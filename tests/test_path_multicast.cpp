// The deadlock-free path-based multicast algorithms of Chapter 6:
// label routing function R, dual-path, multi-path, fixed-path.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dual_path.hpp"
#include "core/fixed_path.hpp"
#include "core/multi_path.hpp"
#include "core/routing_function.hpp"
#include "evsim/random.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;

// The running example of Section 6.2.2 (Figures 6.13, 6.16, 6.17): a 6x6
// mesh, source (3,2), nine destinations.
MulticastRequest fig6_request(const Mesh2D& mesh) {
  return MulticastRequest{
      mesh.node(3, 2),
      {mesh.node(0, 0), mesh.node(0, 2), mesh.node(0, 5), mesh.node(1, 3), mesh.node(4, 5),
       mesh.node(5, 0), mesh.node(5, 1), mesh.node(5, 3), mesh.node(5, 4)}};
}

// --- Routing function R (Lemmas 6.1 / 6.4) ---------------------------------

template <typename Topo, typename Lab>
void expect_r_shortest_and_monotone(const Topo& t, const Lab& lab) {
  const mcast::LabelRouter router(t, lab);
  for (NodeId u = 0; u < t.num_nodes(); ++u) {
    for (NodeId v = 0; v < t.num_nodes(); ++v) {
      if (u == v) continue;
      NodeId cur = u;
      std::uint32_t hops = 0;
      std::uint32_t prev_label = lab.label(u);
      const bool high = lab.label(v) > lab.label(u);
      while (cur != v) {
        cur = router.next_hop(cur, v);
        const std::uint32_t l = lab.label(cur);
        // Partial-order preservation: labels strictly monotone.
        if (high) {
          ASSERT_GT(l, prev_label);
        } else {
          ASSERT_LT(l, prev_label);
        }
        prev_label = l;
        ++hops;
        ASSERT_LE(hops, t.num_nodes());
      }
      // Shortest path.
      EXPECT_EQ(hops, t.distance(u, v)) << u << " -> " << v;
    }
  }
}

TEST(LabelRouter, Lemma61MeshShortestMonotone) {
  for (const auto& [w, h] : {std::pair{4u, 3u}, {6u, 6u}, {5u, 4u}, {4u, 5u}}) {
    const Mesh2D mesh(w, h);
    const ham::MeshBoustrophedonLabeling lab(mesh);
    expect_r_shortest_and_monotone(mesh, lab);
  }
}

TEST(LabelRouter, Lemma64CubeShortestMonotone) {
  for (const std::uint32_t n : {2u, 3u, 4u, 5u}) {
    const Hypercube cube(n);
    const ham::HypercubeGrayLabeling lab(cube);
    expect_r_shortest_and_monotone(cube, lab);
  }
}

// --- Dual-path --------------------------------------------------------------

TEST(DualPath, PaperExampleTraffic33) {
  // Fig. 6.13: 18 channels in the high network, 15 in the low network,
  // maximum source-to-destination distance 18 hops.
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  const MulticastRequest req = fig6_request(mesh);
  const MulticastRoute route = dual_path_route(mesh, lab, req);
  verify_route(mesh, req, route);
  ASSERT_EQ(route.paths.size(), 2u);
  EXPECT_EQ(route.paths[0].hops(), 18u);  // high
  EXPECT_EQ(route.paths[1].hops(), 15u);  // low
  EXPECT_EQ(route.traffic(), 33u);
  EXPECT_EQ(route.max_delivery_hops(), 18u);
}

TEST(DualPath, PreparationSplitMatchesPaper) {
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  const auto split = dual_path_prepare(lab, fig6_request(mesh));
  EXPECT_EQ(split.high,
            (std::vector<NodeId>{mesh.node(5, 3), mesh.node(1, 3), mesh.node(5, 4),
                                 mesh.node(4, 5), mesh.node(0, 5)}));
  EXPECT_EQ(split.low, (std::vector<NodeId>{mesh.node(0, 2), mesh.node(5, 1),
                                            mesh.node(5, 0), mesh.node(0, 0)}));
}

void expect_paths_label_monotone(const topo::Topology&, const ham::Labeling& lab,
                                 const MulticastRoute& route) {
  for (const auto& p : route.paths) {
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      if (p.channel_class == mcast::kHighChannelClass) {
        EXPECT_LT(lab.label(p.nodes[i]), lab.label(p.nodes[i + 1]));
      } else {
        EXPECT_GT(lab.label(p.nodes[i]), lab.label(p.nodes[i + 1]));
      }
    }
  }
}

TEST(DualPath, PathsConfinedToTheirSubnetworks) {
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 20);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = dual_path_route(mesh, lab, req);
    verify_route(mesh, req, route);
    expect_paths_label_monotone(mesh, lab, route);
  }
}

TEST(DualPath, CubeExampleFig619) {
  // Section 6.3: 4-cube, source 1100, destinations 0100, 0011, 0111, 1000,
  // 1111.  D_L = {0100, 0111, 0011}, D_H = {1111, 1000}; the high path's
  // first hop is 1101.
  const Hypercube cube(4);
  const ham::HypercubeGrayLabeling lab(cube);
  const MulticastRequest req{0b1100, {0b0100, 0b0011, 0b0111, 0b1000, 0b1111}};
  const auto split = dual_path_prepare(lab, req);
  EXPECT_EQ(split.high, (std::vector<NodeId>{0b1111, 0b1000}));
  EXPECT_EQ(split.low, (std::vector<NodeId>{0b0100, 0b0111, 0b0011}));
  const MulticastRoute route = dual_path_route(cube, lab, req);
  verify_route(cube, req, route);
  ASSERT_EQ(route.paths.size(), 2u);
  EXPECT_EQ(route.paths[0].nodes[1], 0b1101u);  // routing function picks 1101
  expect_paths_label_monotone(cube, lab, route);
}

TEST(DualPath, AtMostTwoPaths) {
  const Hypercube cube(6);
  const ham::HypercubeGrayLabeling lab(cube);
  evsim::Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId src = rng.uniform_int(0, cube.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 40);
    const MulticastRequest req{src, rng.sample_destinations(cube.num_nodes(), src, k)};
    const MulticastRoute route = dual_path_route(cube, lab, req);
    verify_route(cube, req, route);
    EXPECT_LE(route.paths.size(), 2u);
    expect_paths_label_monotone(cube, lab, route);
  }
}

// --- Multi-path -------------------------------------------------------------

TEST(MultiPath, PaperExampleSplitAndDistance) {
  // Fig. 6.16: D_H1 = {(5,3),(5,4),(4,5)}, D_H2 = {(1,3),(0,5)}; four paths
  // total; the maximum source-to-destination distance drops to 6 hops.
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  const MulticastRequest req = fig6_request(mesh);
  const MulticastRoute route = multi_path_route(mesh, lab, req);
  verify_route(mesh, req, route);
  EXPECT_EQ(route.paths.size(), 4u);
  EXPECT_EQ(route.max_delivery_hops(), 6u);
  // The paper reports 20 channels for this example; the minimum attainable
  // with its own destination partition is 21 (every leg below is already a
  // shortest path), which is what the implementation produces.
  EXPECT_EQ(route.traffic(), 21u);
  EXPECT_LT(route.traffic(), 33u);  // well below dual-path
  expect_paths_label_monotone(mesh, lab, route);
}

TEST(MultiPath, AtMostFourPathsOnMesh) {
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(47);
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 30);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = multi_path_route(mesh, lab, req);
    verify_route(mesh, req, route);
    EXPECT_LE(route.paths.size(), 4u);
    expect_paths_label_monotone(mesh, lab, route);
  }
}

TEST(MultiPath, CubePathsStartAtDistinctNeighbors) {
  const Hypercube cube(4);
  const ham::HypercubeGrayLabeling lab(cube);
  // Fig. 6.21's setup: source 1100, same destinations as the dual example.
  const MulticastRequest req{0b1100, {0b0100, 0b0011, 0b0111, 0b1000, 0b1111}};
  const MulticastRoute route = multi_path_route(cube, lab, req);
  verify_route(cube, req, route);
  EXPECT_GE(route.paths.size(), 2u);
  EXPECT_LE(route.paths.size(), 2u * cube.dimensions());
  std::vector<NodeId> first_hops;
  for (const auto& p : route.paths) first_hops.push_back(p.nodes[1]);
  std::sort(first_hops.begin(), first_hops.end());
  EXPECT_EQ(std::adjacent_find(first_hops.begin(), first_hops.end()), first_hops.end())
      << "paths must leave through distinct neighbours";
  expect_paths_label_monotone(cube, lab, route);
}

TEST(MultiPath, CubeBucketsRespectNeighborLabelRanges) {
  const Hypercube cube(5);
  const ham::HypercubeGrayLabeling lab(cube);
  evsim::Rng rng(53);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId src = rng.uniform_int(0, cube.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 20);
    const MulticastRequest req{src, rng.sample_destinations(cube.num_nodes(), src, k)};
    const MulticastRoute route = multi_path_route(cube, lab, req);
    verify_route(cube, req, route);
    expect_paths_label_monotone(cube, lab, route);
    // Every path's destinations lie in the label range owned by its first
    // hop (Fig. 6.20 step 3).
    for (const auto& p : route.paths) {
      const std::uint32_t lfirst = lab.label(p.nodes[1]);
      const bool high = p.channel_class == mcast::kHighChannelClass;
      for (const std::uint32_t hdel : p.delivery_hops) {
        const std::uint32_t l = lab.label(p.nodes[hdel]);
        if (high) {
          EXPECT_GE(l, lfirst);
        } else {
          EXPECT_LE(l, lfirst);
        }
      }
    }
  }
}

// --- Fixed-path -------------------------------------------------------------

TEST(FixedPath, PaperExampleTraffic35) {
  // Fig. 6.17: 20 high + 15 low = 35 channels, max distance 20 hops.
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  const MulticastRequest req = fig6_request(mesh);
  const MulticastRoute route = fixed_path_route(mesh, lab, req);
  verify_route(mesh, req, route);
  ASSERT_EQ(route.paths.size(), 2u);
  EXPECT_EQ(route.paths[0].hops(), 20u);
  EXPECT_EQ(route.paths[1].hops(), 15u);
  EXPECT_EQ(route.traffic(), 35u);
  EXPECT_EQ(route.max_delivery_hops(), 20u);
}

TEST(FixedPath, VisitsEveryLabelInOrder) {
  const Hypercube cube(4);
  const ham::HypercubeGrayLabeling lab(cube);
  const MulticastRequest req{0b1100, {0b0100, 0b1111}};
  const MulticastRoute route = fixed_path_route(cube, lab, req);
  verify_route(cube, req, route);
  for (const auto& p : route.paths) {
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      const std::int64_t diff = static_cast<std::int64_t>(lab.label(p.nodes[i + 1])) -
                                static_cast<std::int64_t>(lab.label(p.nodes[i]));
      EXPECT_EQ(std::abs(diff), 1) << "fixed path must follow the Hamiltonian path";
    }
  }
}

TEST(FixedPath, TrafficIsLabelSpan) {
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(59);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 20);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = fixed_path_route(mesh, lab, req);
    verify_route(mesh, req, route);
    std::uint32_t lmax = lab.label(src), lmin = lab.label(src);
    for (const NodeId d : req.destinations) {
      lmax = std::max(lmax, lab.label(d));
      lmin = std::min(lmin, lab.label(d));
    }
    EXPECT_EQ(route.traffic(), (lmax - lab.label(src)) + (lab.label(src) - lmin));
  }
}

TEST(FixedPath, NeverBeatsDualPathAndConvergesForLargeSets) {
  // Dual-path shortcuts through the mesh, fixed-path walks every label:
  // dual <= fixed always; for very large destination sets they coincide.
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 30);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    EXPECT_LE(dual_path_route(mesh, lab, req).traffic(),
              fixed_path_route(mesh, lab, req).traffic());
  }
  // All 63 destinations: both traverse the whole Hamiltonian path.
  MulticastRequest all{0, {}};
  for (NodeId d = 1; d < mesh.num_nodes(); ++d) all.destinations.push_back(d);
  EXPECT_EQ(dual_path_route(mesh, lab, all).traffic(),
            fixed_path_route(mesh, lab, all).traffic());
}

}  // namespace
