// Generalised Hamiltonian labelings and path-based multicast on 3-D meshes
// and k-ary n-cubes (the Section 8.2 extension direction).
#include <gtest/gtest.h>

#include <set>

#include "cdg/analyzers.hpp"
#include "core/dual_path.hpp"
#include "core/fixed_path.hpp"
#include "core/multi_path.hpp"
#include "evsim/random.hpp"
#include "topology/hamiltonian.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using topo::NodeId;

void expect_hamiltonian(const topo::Topology& t, const ham::Labeling& lab) {
  std::set<std::uint32_t> labels;
  for (NodeId u = 0; u < t.num_nodes(); ++u) {
    const std::uint32_t l = lab.label(u);
    ASSERT_LT(l, t.num_nodes());
    EXPECT_TRUE(labels.insert(l).second);
    EXPECT_EQ(lab.node_at(l), u);
  }
  for (std::uint32_t l = 0; l + 1 < t.num_nodes(); ++l) {
    EXPECT_TRUE(t.adjacent(lab.node_at(l), lab.node_at(l + 1)))
        << "labels " << l << " and " << l + 1;
  }
}

TEST(MixedRadixGray, MatchesBoustrophedonOnMesh2D) {
  const topo::Mesh2D mesh(5, 4);
  const ham::MeshBoustrophedonLabeling bous(mesh);
  const topo::KAryNCube as_kary(5, 2, /*wrap=*/false);
  // 5-ary 2-cube without wrap has the same node numbering as a 5x5 mesh;
  // use a 5x5 comparison instead for identical shapes.
  const topo::Mesh2D mesh5(5, 5);
  const ham::MeshBoustrophedonLabeling bous5(mesh5);
  const ham::MixedRadixGrayLabeling gray = ham::MixedRadixGrayLabeling::for_kary(as_kary);
  for (NodeId u = 0; u < mesh5.num_nodes(); ++u) {
    EXPECT_EQ(gray.label(u), bous5.label(u)) << "node " << u;
  }
}

TEST(MixedRadixGray, MatchesBinaryGrayOnHypercube) {
  const topo::Hypercube cube(5);
  const ham::HypercubeGrayLabeling bin(cube);
  const topo::KAryNCube k2(2, 5);
  const ham::MixedRadixGrayLabeling gray = ham::MixedRadixGrayLabeling::for_kary(k2);
  for (NodeId u = 0; u < cube.num_nodes(); ++u) {
    EXPECT_EQ(gray.label(u), bin.label(u)) << "node " << u;
  }
}

TEST(MixedRadixGray, HamiltonianOnMesh3D) {
  for (const auto& dims : {std::array{3u, 4u, 2u}, {2u, 2u, 2u}, {4u, 3u, 3u}, {5u, 1u, 4u}}) {
    const topo::Mesh3D mesh(dims[0], dims[1], dims[2]);
    const ham::MixedRadixGrayLabeling lab = ham::MixedRadixGrayLabeling::for_mesh3d(mesh);
    expect_hamiltonian(mesh, lab);
  }
}

TEST(MixedRadixGray, HamiltonianOnKAryNCube) {
  for (const auto& [k, n] : {std::pair{3u, 3u}, {4u, 2u}, {5u, 2u}, {3u, 4u}}) {
    const topo::KAryNCube cube(k, n, /*wrap=*/true);
    const ham::MixedRadixGrayLabeling lab = ham::MixedRadixGrayLabeling::for_kary(cube);
    expect_hamiltonian(cube, lab);
  }
}

TEST(MixedRadixGray, SubnetworksAcyclic) {
  const topo::Mesh3D mesh(3, 3, 3);
  const ham::MixedRadixGrayLabeling lab = ham::MixedRadixGrayLabeling::for_mesh3d(mesh);
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(
      mesh, [&](NodeId u, NodeId v) { return lab.label(u) < lab.label(v); }));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(
      mesh, [&](NodeId u, NodeId v) { return lab.label(u) > lab.label(v); }));
  for (const bool high : {true, false}) {
    EXPECT_TRUE(cdg::build_unicast_cdg(mesh, cdg::label_routing(mesh, lab, high)).acyclic());
  }
}

template <typename TopologyT>
void expect_path_algorithms_work(const TopologyT& t, const ham::Labeling& lab,
                                 std::uint64_t seed) {
  evsim::Rng rng(seed);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, std::min(12u, t.num_nodes() - 1));
    const MulticastRequest req{src, rng.sample_destinations(t.num_nodes(), src, k)};
    for (const MulticastRoute& route :
         {dual_path_route(t, lab, req), multi_path_route(t, lab, req),
          fixed_path_route(t, lab, req)}) {
      verify_route(t, req, route);
      // Label monotonicity (the deadlock-freedom invariant).
      for (const auto& p : route.paths) {
        for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
          if (p.channel_class == mcast::kHighChannelClass) {
            EXPECT_LT(lab.label(p.nodes[i]), lab.label(p.nodes[i + 1]));
          } else {
            EXPECT_GT(lab.label(p.nodes[i]), lab.label(p.nodes[i + 1]));
          }
        }
      }
    }
  }
}

TEST(GeneralizedPaths, Mesh3D) {
  const topo::Mesh3D mesh(4, 3, 3);
  const ham::MixedRadixGrayLabeling lab = ham::MixedRadixGrayLabeling::for_mesh3d(mesh);
  expect_path_algorithms_work(mesh, lab, 211);
}

TEST(GeneralizedPaths, KAry3Cube) {
  const topo::KAryNCube cube(4, 3, /*wrap=*/true);
  const ham::MixedRadixGrayLabeling lab = ham::MixedRadixGrayLabeling::for_kary(cube);
  expect_path_algorithms_work(cube, lab, 223);
}

TEST(GeneralizedPaths, RoutingStretchIsModestOnMesh3D) {
  // R is not provably shortest beyond the 2-D mesh, but on the 3-D gray
  // labeling the detour factor to a single destination stays small.
  const topo::Mesh3D mesh(4, 4, 4);
  const ham::MixedRadixGrayLabeling lab = ham::MixedRadixGrayLabeling::for_mesh3d(mesh);
  const mcast::LabelRouter router(mesh, lab);
  double total_hops = 0.0, total_dist = 0.0;
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
      if (u == v) continue;
      NodeId cur = u;
      std::uint32_t hops = 0;
      while (cur != v) {
        cur = router.next_hop(cur, v);
        ASSERT_LE(++hops, mesh.num_nodes());
      }
      total_hops += hops;
      total_dist += mesh.distance(u, v);
    }
  }
  EXPECT_LT(total_hops / total_dist, 1.35) << "average stretch too large";
}

}  // namespace
