// The multicast service layer and the generic labeled routing suite.
#include <gtest/gtest.h>

#include <set>

#include "core/route_cache.hpp"
#include "core/route_factory.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "service/multicast_service.hpp"
#include "topology/hamiltonian.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

svc::MulticastService make_service(const mcast::MeshRoutingSuite& suite,
                                   evsim::Scheduler& sched, Algorithm algo) {
  const worm::WormholeParams params{.flit_time = 50e-9, .message_flits = 32,
                                    .channel_copies = 1};
  return svc::MulticastService(
      suite.mesh(), params, sched,
      [&suite, algo](const mcast::MulticastRequest& r) { return suite.route(algo, r); },
      [&suite](const mcast::MulticastRoute& r) {
        return worm::make_worm_specs(suite.mesh(), r, 1);
      });
}

TEST(MulticastService, DeliversAndCompletes) {
  const topo::Mesh2D mesh(4, 4);
  const mcast::MeshRoutingSuite suite(mesh);
  evsim::Scheduler sched;
  svc::MulticastService service = make_service(suite, sched, Algorithm::kDualPath);

  std::vector<topo::NodeId> delivered;
  double done_latency = -1.0;
  service.multicast(
      {0, {5, 10, 15}},
      [&](topo::NodeId d, double) { delivered.push_back(d); },
      [&](double l) { done_latency = l; });
  sched.run();
  EXPECT_EQ(delivered.size(), 3u);
  EXPECT_GT(done_latency, 0.0);
  EXPECT_TRUE(service.network().idle());
}

TEST(MulticastService, CallbackCanSendAgain) {
  // Re-entrancy: a completion callback issues the next message.
  const topo::Mesh2D mesh(4, 4);
  const mcast::MeshRoutingSuite suite(mesh);
  evsim::Scheduler sched;
  svc::MulticastService service = make_service(suite, sched, Algorithm::kMultiPath);

  int rounds = 0;
  std::function<void(double)> chain = [&](double) {
    if (++rounds < 5) service.multicast({0, {15}}, {}, chain);
  };
  service.multicast({0, {15}}, {}, chain);
  sched.run();
  EXPECT_EQ(rounds, 5);
}

TEST(MulticastService, MulticastManyMatchesScalarSends) {
  // The batch entry point must be observationally identical to issuing the
  // same requests through multicast() one by one before running.
  const topo::Mesh2D mesh(4, 4);
  const worm::WormholeParams params{.flit_time = 50e-9, .message_flits = 32,
                                    .channel_copies = 1};
  const auto router = mcast::make_caching_router(mesh, Algorithm::kDualPath);
  const std::vector<mcast::MulticastRequest> requests = {
      {0, {5, 10, 15}}, {3, {12, 7}}, {0, {5, 10, 15}}};

  std::multiset<topo::NodeId> scalar_delivered;
  std::size_t scalar_done = 0;
  {
    evsim::Scheduler sched;
    svc::MulticastService service(*router, params, sched);
    for (const auto& req : requests) {
      service.multicast(
          req, [&](topo::NodeId d, double) { scalar_delivered.insert(d); },
          [&](double) { ++scalar_done; });
    }
    sched.run();
  }

  std::multiset<topo::NodeId> batch_delivered;
  std::size_t batch_done = 0;
  {
    evsim::Scheduler sched;
    svc::MulticastService service(*router, params, sched);
    const std::vector<svc::MulticastService::Handle> handles = service.multicast_many(
        requests, [&](topo::NodeId d, double) { batch_delivered.insert(d); },
        [&](double) { ++batch_done; });
    EXPECT_EQ(handles.size(), requests.size());
    sched.run();
  }

  EXPECT_EQ(batch_done, scalar_done);
  EXPECT_EQ(batch_delivered, scalar_delivered);
  EXPECT_EQ(batch_done, requests.size());
}

TEST(MulticastService, BarrierReleasesEveryoneOnce) {
  const topo::Mesh2D mesh(4, 4);
  const mcast::MeshRoutingSuite suite(mesh);
  evsim::Scheduler sched;
  svc::MulticastService service = make_service(suite, sched, Algorithm::kDualPath);

  double release_time = -1.0;
  service.barrier(mesh.node(1, 1), [&](double t) { release_time = t; });
  sched.run();
  EXPECT_GT(release_time, 0.0);
  EXPECT_TRUE(service.network().idle());
  // 15 report unicasts + 1 release broadcast.
  EXPECT_EQ(service.network().messages_injected(), 16u);
}

TEST(MulticastService, GatherCountsAllArrivals) {
  const topo::Mesh2D mesh(4, 4);
  const mcast::MeshRoutingSuite suite(mesh);
  evsim::Scheduler sched;
  svc::MulticastService service = make_service(suite, sched, Algorithm::kDualPath);
  double finish = -1.0;
  service.gather(0, [&](double t) { finish = t; });
  sched.run();
  EXPECT_GT(finish, 0.0);
  EXPECT_EQ(service.network().messages_completed(), 15u);
}

TEST(LabeledSuite, WorksOnMesh3DAndKAry) {
  const topo::Mesh3D mesh(3, 3, 3);
  mcast::LabeledRoutingSuite suite(
      mesh, std::make_unique<ham::MixedRadixGrayLabeling>(
                ham::MixedRadixGrayLabeling::for_mesh3d(mesh)));
  evsim::Rng rng(501);
  for (int trial = 0; trial < 15; ++trial) {
    const topo::NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 10);
    const mcast::MulticastRequest req{src,
                                      rng.sample_destinations(mesh.num_nodes(), src, k)};
    for (const Algorithm a : {Algorithm::kMultiUnicast, Algorithm::kBroadcast,
                              Algorithm::kDualPath, Algorithm::kMultiPath,
                              Algorithm::kFixedPath}) {
      SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
      verify_route(mesh, req, suite.route(a, req));
    }
  }
  EXPECT_THROW((void)suite.route(Algorithm::kGreedyST, {0, {1}}), std::invalid_argument);

  const topo::KAryNCube kary(3, 3);
  mcast::LabeledRoutingSuite ksuite(
      kary, std::make_unique<ham::MixedRadixGrayLabeling>(
                ham::MixedRadixGrayLabeling::for_kary(kary)));
  const mcast::MulticastRequest req{0, {5, 13, 26}};
  for (const Algorithm a :
       {Algorithm::kDualPath, Algorithm::kMultiPath, Algorithm::kFixedPath}) {
    verify_route(kary, req, ksuite.route(a, req));
  }
}

TEST(LabeledSuite, BroadcastIsSpanningTreeUnderLabelRouting) {
  const topo::Mesh3D mesh(3, 2, 2);
  mcast::LabeledRoutingSuite suite(
      mesh, std::make_unique<ham::MixedRadixGrayLabeling>(
                ham::MixedRadixGrayLabeling::for_mesh3d(mesh)));
  const mcast::MulticastRequest req{0, {11}};
  const mcast::MulticastRoute route = suite.route(Algorithm::kBroadcast, req);
  EXPECT_EQ(route.traffic(), mesh.num_nodes() - 1);
}

}  // namespace
