// The polymorphic Router layer and the CachingRouter decorator: factory
// coverage against the underlying suites, bit-identical cached routes under
// repeated and concurrent access, bounded eviction, and the Router-based
// service / dynamic-experiment entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/route_cache.hpp"
#include "core/router.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "service/multicast_service.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/mesh3d.hpp"
#include "wormhole/experiment.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

std::vector<mcast::MulticastRequest> random_requests(const topo::Topology& t,
                                                     std::uint32_t count,
                                                     std::uint32_t max_k,
                                                     std::uint64_t seed) {
  evsim::Rng rng(seed);
  std::vector<mcast::MulticastRequest> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const topo::NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, max_k);
    out.push_back({src, rng.sample_destinations(t.num_nodes(), src, k)});
  }
  return out;
}

// (a) make_router covers every algorithm/topology pair the suites support
// and matches the suites' output exactly.

TEST(MakeRouter, MatchesMeshSuiteOnEveryAlgorithm) {
  const topo::Mesh2D mesh(8, 8);
  const mcast::MeshRoutingSuite suite(mesh);
  const auto requests = random_requests(mesh, 6, 16, 11);
  for (const Algorithm a : mcast::supported_algorithms(mesh)) {
    SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
    const auto router = mcast::make_router(mesh, a);
    EXPECT_EQ(router->name(), mcast::algorithm_name(a));
    EXPECT_EQ(router->algorithm(), a);
    EXPECT_EQ(&router->topology(), static_cast<const topo::Topology*>(&mesh));
    for (const auto& req : requests) {
      const mcast::MulticastRoute route = router->route(req);
      EXPECT_EQ(route, suite.route(a, req));
      verify_route(mesh, req, route);
    }
  }
}

TEST(MakeRouter, MatchesCubeSuiteOnEveryAlgorithm) {
  const topo::Hypercube cube(5);
  const mcast::CubeRoutingSuite suite(cube);
  const auto requests = random_requests(cube, 6, 12, 13);
  for (const Algorithm a : mcast::supported_algorithms(cube)) {
    SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
    const auto router = mcast::make_router(cube, a);
    for (const auto& req : requests) {
      EXPECT_EQ(router->route(req), suite.route(a, req));
    }
  }
}

TEST(MakeRouter, MatchesLabeledSuiteOnMesh3DAndKAry) {
  const topo::Mesh3D mesh(3, 3, 3);
  const mcast::LabeledRoutingSuite msuite(
      mesh, std::make_unique<ham::MixedRadixGrayLabeling>(
                ham::MixedRadixGrayLabeling::for_mesh3d(mesh)));
  for (const Algorithm a : mcast::supported_algorithms(mesh)) {
    SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
    const auto router = mcast::make_router(mesh, a);
    for (const auto& req : random_requests(mesh, 5, 8, 17)) {
      EXPECT_EQ(router->route(req), msuite.route(a, req));
    }
  }

  const topo::KAryNCube kary(4, 2);
  const mcast::LabeledRoutingSuite ksuite(
      kary, std::make_unique<ham::MixedRadixGrayLabeling>(
                ham::MixedRadixGrayLabeling::for_kary(kary)));
  for (const Algorithm a : mcast::supported_algorithms(kary)) {
    SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
    const auto router = mcast::make_router(kary, a);
    for (const auto& req : random_requests(kary, 5, 6, 19)) {
      EXPECT_EQ(router->route(req), ksuite.route(a, req));
    }
  }
}

TEST(MakeRouter, RejectsInapplicableAlgorithmsAtConstruction) {
  const topo::Mesh2D mesh(4, 4);
  EXPECT_THROW((void)mcast::make_router(mesh, Algorithm::kLenTree), std::invalid_argument);
  EXPECT_THROW((void)mcast::make_router(mesh, Algorithm::kEcubeMT), std::invalid_argument);

  const topo::Hypercube cube(3);
  EXPECT_THROW((void)mcast::make_router(cube, Algorithm::kXFirstMT), std::invalid_argument);
  EXPECT_THROW((void)mcast::make_router(cube, Algorithm::kDCXFirstTree),
               std::invalid_argument);

  const topo::Mesh3D mesh3(2, 2, 2);
  EXPECT_THROW((void)mcast::make_router(mesh3, Algorithm::kGreedyST), std::invalid_argument);
}

TEST(MakeRouter, DeadlockFreedomFlags) {
  const topo::Mesh2D mesh(4, 4);
  EXPECT_TRUE(mcast::make_router(mesh, Algorithm::kDualPath)->deadlock_free());
  EXPECT_TRUE(mcast::make_router(mesh, Algorithm::kDCXFirstTree)->deadlock_free());
  EXPECT_FALSE(mcast::make_router(mesh, Algorithm::kXFirstMT)->deadlock_free());
  EXPECT_FALSE(mcast::make_router(mesh, Algorithm::kBroadcast)->deadlock_free());
}

TEST(Router, SpecsMatchWormSpecConversion) {
  // The mesh router must apply the mesh-aware (quadrant-pinning) policy.
  const topo::Mesh2D mesh(6, 6);
  const auto router = mcast::make_router(mesh, Algorithm::kDCXFirstTree, 2);
  const mcast::MulticastRequest req{7, {0, 14, 30, 35}};
  const mcast::MulticastRoute route = router->route(req);
  const auto expected = worm::make_worm_specs(mesh, route, 2);
  const auto got = router->specs(route);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t w = 0; w < got.size(); ++w) {
    ASSERT_EQ(got[w].links.size(), expected[w].links.size());
    for (std::size_t l = 0; l < got[w].links.size(); ++l) {
      EXPECT_EQ(got[w].links[l].channel, expected[w].links[l].channel);
      EXPECT_EQ(got[w].links[l].copy, expected[w].links[l].copy);
    }
    EXPECT_EQ(got[w].deliveries, expected[w].deliveries);
  }
}

// (b) CachingRouter returns bit-identical routes across repeated and
// concurrent calls.

TEST(CachingRouter, RepeatedCallsReturnIdenticalRoutes) {
  const topo::Mesh2D mesh(8, 8);
  const auto plain = mcast::make_router(mesh, Algorithm::kDualPath);
  const mcast::CachingRouter cached(mcast::make_router(mesh, Algorithm::kDualPath));

  const auto requests = random_requests(mesh, 40, 12, 23);
  for (const auto& req : requests) {
    const mcast::MulticastRoute expected = plain->route(req);
    EXPECT_EQ(cached.route(req), expected);  // miss path
    EXPECT_EQ(cached.route(req), expected);  // hit path
  }
  const mcast::RouteCacheStats st = cached.stats();
  EXPECT_GE(st.hits, requests.size());
  EXPECT_GT(st.hit_rate(), 0.0);
}

TEST(CachingRouter, PermutedDestinationsShareOneEntry) {
  const topo::Mesh2D mesh(8, 8);
  const mcast::CachingRouter cached(mcast::make_router(mesh, Algorithm::kDualPath));
  const mcast::MulticastRequest forward{0, {5, 9, 27, 42}};
  const mcast::MulticastRequest reversed{0, {42, 27, 9, 5}};
  const mcast::MulticastRoute first = cached.route(forward);
  EXPECT_EQ(cached.route(reversed), first);
  EXPECT_EQ(cached.stats().hits, 1u);
  EXPECT_EQ(cached.size(), 1u);
}

TEST(CachingRouter, ConcurrentCallsAreRaceFreeAndIdentical) {
  const topo::Mesh2D mesh(8, 8);
  const auto plain = mcast::make_router(mesh, Algorithm::kMultiPath);
  const mcast::CachingRouter cached(mcast::make_router(mesh, Algorithm::kMultiPath),
                                    {.capacity = 64, .shards = 4});

  const auto requests = random_requests(mesh, 32, 10, 29);
  std::vector<mcast::MulticastRoute> expected;
  expected.reserve(requests.size());
  for (const auto& req : requests) expected.push_back(plain->route(req));

  std::atomic<int> mismatches{0};
  worm::parallel_for(8 * requests.size(), [&](std::size_t i) {
    const std::size_t r = i % requests.size();
    if (!(cached.route(requests[r]) == expected[r])) mismatches.fetch_add(1);
  }, 8);
  EXPECT_EQ(mismatches.load(), 0);
  const mcast::RouteCacheStats st = cached.stats();
  EXPECT_GT(st.hits, 0u);
  EXPECT_EQ(st.hits + st.misses, 8 * requests.size());
}

// (c) Eviction respects the configured capacity.

TEST(CachingRouter, EvictsDownToCapacity) {
  const topo::Mesh2D mesh(8, 8);
  mcast::CachingRouter cached(mcast::make_router(mesh, Algorithm::kDualPath),
                              {.capacity = 8, .shards = 2});
  EXPECT_EQ(cached.capacity(), 8u);

  const auto requests = random_requests(mesh, 200, 6, 31);
  for (const auto& req : requests) (void)cached.route(req);
  EXPECT_LE(cached.size(), cached.capacity());
  EXPECT_GT(cached.stats().evictions, 0u);

  cached.clear();
  EXPECT_EQ(cached.size(), 0u);
}

TEST(CachingRouter, LruKeepsHotEntries) {
  const topo::Mesh2D mesh(8, 8);
  const mcast::CachingRouter cached(mcast::make_router(mesh, Algorithm::kDualPath),
                                    {.capacity = 4, .shards = 1});
  const mcast::MulticastRequest hot{0, {63}};
  (void)cached.route(hot);
  // Flood with distinct requests, re-touching `hot` between each so it
  // stays at the front of the LRU and never gets evicted.
  for (topo::NodeId d = 1; d < 40; ++d) {
    (void)cached.route({0, {d}});
    (void)cached.route(hot);
  }
  const std::uint64_t hits_before = cached.stats().hits;
  (void)cached.route(hot);
  EXPECT_EQ(cached.stats().hits, hits_before + 1);
}

// Router-based entry points: service and dynamic harness.

TEST(RouterIntegration, MulticastServiceRoutesThroughRouter) {
  const topo::Mesh2D mesh(4, 4);
  const auto router = mcast::make_caching_router(mesh, Algorithm::kDualPath);
  evsim::Scheduler sched;
  svc::MulticastService service(
      *router, {.flit_time = 50e-9, .message_flits = 32, .channel_copies = 1}, sched);

  std::vector<topo::NodeId> delivered;
  double done_latency = -1.0;
  service.multicast(
      {0, {5, 10, 15}},
      [&](topo::NodeId d, double) { delivered.push_back(d); },
      [&](double l) { done_latency = l; });
  sched.run();
  EXPECT_EQ(delivered.size(), 3u);
  EXPECT_GT(done_latency, 0.0);
  EXPECT_TRUE(service.network().idle());
  EXPECT_EQ(router->stats().misses, 1u);

  // A second identical multicast is a route-cache hit.
  service.multicast({0, {5, 10, 15}});
  sched.run();
  EXPECT_GT(router->stats().hits, 0u);
}

TEST(RouterIntegration, DynamicRunWithRepeatedGroupsHitsCache) {
  const topo::Mesh2D mesh(4, 4);
  const auto router = mcast::make_caching_router(mesh, Algorithm::kDualPath);

  worm::DynamicConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 16, .channel_copies = 1};
  // 16 nodes x 1 destination = at most 240 distinct requests; a few hundred
  // messages guarantee repeated destination sets.
  cfg.traffic = {.mean_interarrival_s = 200e-6,
                 .avg_destinations = 1,
                 .fixed_destinations = true,
                 .exponential_interarrival = false,
                 .seed = 37};
  cfg.target_messages = 400;
  cfg.max_messages = 800;
  cfg.max_sim_time_s = 0.5;
  const worm::DynamicResult r = worm::run_dynamic(*router, cfg);
  EXPECT_GT(r.messages_completed, 0u);
  EXPECT_GT(router->stats().hits, 0u);
  EXPECT_GT(router->stats().hit_rate(), 0.0);
}

TEST(ParallelFor, ExplicitZeroThreadHintFallsBackToSaneWorkerCount) {
  // A 0 hint (what hardware_concurrency() returns when unknown) must not
  // degenerate: all indices still execute exactly once.
  std::vector<std::atomic<int>> counts(64);
  worm::parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); }, 0);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

}  // namespace
