// Circuit-switched network (Section 2.2.3).
#include <gtest/gtest.h>

#include "cdg/analyzers.hpp"
#include "evsim/scheduler.hpp"
#include "switching/circuit.hpp"
#include "switching/latency_models.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using topo::Mesh2D;
using topo::NodeId;

TEST(Circuit, UncontendedLatencyMatchesAnalyticModel) {
  const Mesh2D mesh(9, 1);
  evsim::Scheduler sched;
  sw::CircuitParams params;
  params.probe_hop_time = 0.1e-6;
  params.transfer_time = 6.4e-6;
  sw::CircuitNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  double latency = -1.0;
  net.set_on_delivered([&](std::uint32_t, double l) { latency = l; });
  net.inject(0, 8);  // 8 hops
  sched.run();
  const sw::SwitchingParams model{.message_bytes = 128,
                                  .bandwidth = 20e6,
                                  .header_bytes = 2,
                                  .control_bytes = 2,
                                  .flit_bytes = 1};
  EXPECT_NEAR(latency, sw::circuit_switching_latency(model, 8), 1e-12);
  EXPECT_TRUE(net.idle());
}

TEST(Circuit, HoldingProtocolSerialisesSharedChannel) {
  const Mesh2D mesh(3, 1);
  evsim::Scheduler sched;
  sw::CircuitParams params;
  params.probe_hop_time = 1.0;
  params.transfer_time = 10.0;
  sw::CircuitNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  std::vector<double> latencies;
  net.set_on_delivered([&](std::uint32_t, double l) { latencies.push_back(l); });
  net.inject(0, 2);
  net.inject(0, 2);
  sched.run();
  ASSERT_EQ(latencies.size(), 2u);
  // First: 2 probe hops + transfer = 12.  Second waits until the first's
  // teardown at t = 12, then needs 12 more.
  EXPECT_DOUBLE_EQ(latencies[0], 12.0);
  EXPECT_DOUBLE_EQ(latencies[1], 24.0);
  EXPECT_EQ(net.retries(), 0u);
}

TEST(Circuit, DropAndRetryEventuallyDelivers) {
  const Mesh2D mesh(4, 4);
  evsim::Scheduler sched;
  sw::CircuitParams params;
  params.probe_hop_time = 0.1;
  params.transfer_time = 10.0;
  params.drop_and_retry = true;
  params.retry_backoff_mean = 3.0;
  params.seed = 99;
  sw::CircuitNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  int done = 0;
  net.set_on_delivered([&](std::uint32_t, double) { ++done; });
  // Several crossing circuits through the mesh centre.
  net.inject(mesh.node(0, 1), mesh.node(3, 1));
  net.inject(mesh.node(3, 2), mesh.node(0, 2));
  net.inject(mesh.node(1, 0), mesh.node(1, 3));
  net.inject(mesh.node(2, 3), mesh.node(2, 0));
  net.inject(mesh.node(0, 0), mesh.node(3, 3));
  sched.run();
  EXPECT_EQ(done, 5);
  EXPECT_TRUE(net.idle());
}

TEST(Circuit, HoldingProtocolDrainsUnderStress) {
  // X-first routing has an acyclic CDG, so holding probes cannot deadlock.
  const Mesh2D mesh(5, 5);
  evsim::Scheduler sched;
  sw::CircuitParams params;
  params.probe_hop_time = 0.05;
  params.transfer_time = 4.0;
  sw::CircuitNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  evsim::Rng rng(701);
  std::uint32_t injected = 0;
  for (int i = 0; i < 200; ++i) {
    const NodeId s = rng.uniform_int(0, mesh.num_nodes() - 1);
    const NodeId d = rng.uniform_int(0, mesh.num_nodes() - 1);
    if (s == d) continue;
    const double t = rng.uniform(0.0, 100.0);
    sched.schedule_at(t, [&net, s, d] { (void)net.inject(s, d); });
    ++injected;
  }
  sched.run();
  EXPECT_EQ(net.circuits_delivered(), injected);
  EXPECT_TRUE(net.idle());
}

}  // namespace
