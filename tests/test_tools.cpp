// ArgParser (tools/): flag parsing, typed accessors and their error
// reporting.  A malformed numeric flag must surface as invalid_argument
// naming the flag, not as a bare std::stod exception (which the tools
// print as the useless "stod").
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "arg_parser.hpp"

namespace {

using mcnet::tools::ArgParser;

/// Build an ArgParser from a brace list (argv[0] included).
ArgParser make_parser(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  for (auto& a : storage) argv.push_back(a.data());
  return {static_cast<int>(argv.size()), argv.data()};
}

TEST(ArgParser, ParsesKeyValueAndEqualsForms) {
  ArgParser p = make_parser({"prog", "--alpha", "1.5", "--beta=2", "--flag"});
  EXPECT_DOUBLE_EQ(p.get_double("alpha", 0.0, ""), 1.5);
  EXPECT_EQ(p.get_int("beta", 0, ""), 2);
  EXPECT_TRUE(p.get_flag("flag", ""));
  EXPECT_FALSE(p.get_flag("absent", ""));
  p.reject_unknown();
}

TEST(ArgParser, DefaultsApplyWhenAbsent) {
  ArgParser p = make_parser({"prog"});
  EXPECT_DOUBLE_EQ(p.get_double("x", 3.25, ""), 3.25);
  EXPECT_EQ(p.get_int("n", -7, ""), -7);
}

TEST(ArgParser, MalformedDoubleNamesTheFlag) {
  ArgParser p = make_parser({"prog", "--interarrival-us", "fast"});
  try {
    (void)p.get_double("interarrival-us", 300.0, "");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--interarrival-us"), std::string::npos) << what;
    EXPECT_NE(what.find("fast"), std::string::npos) << what;
  }
}

TEST(ArgParser, TrailingGarbageInNumberIsRejected) {
  ArgParser p = make_parser({"prog", "--x", "12abc", "--n", "7q"});
  EXPECT_THROW((void)p.get_double("x", 0.0, ""), std::invalid_argument);
  EXPECT_THROW((void)p.get_int("n", 0, ""), std::invalid_argument);
}

TEST(ArgParser, MalformedIntNamesTheFlag) {
  ArgParser p = make_parser({"prog", "--dests=many"});
  try {
    (void)p.get_int("dests", 10, "");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--dests"), std::string::npos) << e.what();
  }
}

TEST(ArgParser, OutOfRangeIntIsRejectedWithFlagName) {
  ArgParser p = make_parser({"prog", "--n", "999999999999999999999999"});
  try {
    (void)p.get_int("n", 0, "");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos) << e.what();
  }
}

TEST(ArgParser, RejectsUnknownAndPositionalArguments) {
  EXPECT_THROW(make_parser({"prog", "positional"}), std::invalid_argument);
  ArgParser p = make_parser({"prog", "--known", "1", "--typo", "2"});
  EXPECT_EQ(p.get_int("known", 0, ""), 1);
  EXPECT_THROW(p.reject_unknown(), std::invalid_argument);
}

TEST(ArgParser, NegativeNumbersStillParse) {
  ArgParser p = make_parser({"prog", "--x=-2.5", "--n=-42"});
  EXPECT_DOUBLE_EQ(p.get_double("x", 0.0, ""), -2.5);
  EXPECT_EQ(p.get_int("n", 0, ""), -42);
}

}  // namespace
