// Collective phases over the group layer: the Jung & Sakho all-to-all
// broadcast bound, quiet-group completion for every op, view-change-aware
// restart (evicted members excluded, stable chunks never re-sent, no
// double-applied reduction contributions), and seeded churn replay where
// every surviving member ends up holding the complete result.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coll/atab.hpp"
#include "coll/collective.hpp"
#include "evsim/scheduler.hpp"
#include "fault/fault_router.hpp"
#include "obs/metrics.hpp"
#include "service/churn.hpp"
#include "service/group_service.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

struct Fixture {
  topo::Mesh2D mesh;
  std::shared_ptr<fault::FaultState> faults;
  std::unique_ptr<fault::FaultAwareRouter> router;
  evsim::Scheduler sched;
  svc::MulticastService service;

  explicit Fixture(std::uint32_t w, std::uint32_t h, worm::WormholeParams params = {})
      : mesh(w, h),
        faults(std::make_shared<fault::FaultState>(mesh)),
        router(fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults)),
        service(*router, params, sched) {}

  void run_until(svc::GroupService& groups, double stop_at_s) {
    sched.schedule_at(stop_at_s, [&groups] { groups.stop(); });
    sched.run();
  }
};

TEST(CollConfig, ValidationRejectsBadFields) {
  coll::CollConfig c;
  c.chunks = 0;
  try {
    c.validate();
    FAIL() << "chunks=0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("chunks"), std::string::npos);
  }

  c = coll::CollConfig{};
  c.max_reissues_per_chunk = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  EXPECT_NO_THROW(coll::CollConfig{}.validate());
}

TEST(CollConfig, ConstructorValidatesGroupAndConfig) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10});

  EXPECT_THROW(coll::Collective(groups, 999), std::invalid_argument);
  coll::CollConfig bad;
  bad.chunks = 0;
  EXPECT_THROW(coll::Collective(groups, gid, bad), std::invalid_argument);

  coll::Collective coll(groups, gid);
  EXPECT_FALSE(coll.busy());
  EXPECT_EQ(coll.group(), gid);
}

// ---------------------------------------------------------------------------
// Jung & Sakho bound for all-to-all broadcast on k-ary n-dimensional tori:
// with 2n in-links per node and one message per link per step, no schedule
// finishes in fewer than ceil((k^n - 1) / (2n)) steps.

TEST(CollAtab, LowerBoundMatchesFormula) {
  // ceil((k^n - 1) / (2n)) spot checks.
  EXPECT_EQ(coll::atab_lower_bound(2, 2), 1u);   // (4-1)/4
  EXPECT_EQ(coll::atab_lower_bound(2, 3), 2u);   // (8-1)/6
  EXPECT_EQ(coll::atab_lower_bound(3, 2), 2u);   // (9-1)/4
  EXPECT_EQ(coll::atab_lower_bound(4, 2), 4u);   // (16-1)/4
  EXPECT_EQ(coll::atab_lower_bound(5, 2), 6u);   // (25-1)/4
  EXPECT_EQ(coll::atab_lower_bound(3, 3), 5u);   // (27-1)/6
  EXPECT_EQ(coll::atab_lower_bound(4, 3), 11u);  // (64-1)/6
  EXPECT_EQ(coll::atab_lower_bound(8, 2), 16u);  // (64-1)/4

  EXPECT_THROW((void)coll::atab_lower_bound(1, 2), std::invalid_argument);
  EXPECT_THROW((void)coll::atab_lower_bound(4, 0), std::invalid_argument);
}

TEST(CollAtab, GreedyScheduleCompletesWithinTwiceTheBound) {
  // The coordinated greedy schedule is not optimal, but it must complete
  // and stay within 2x the information-theoretic bound on every config.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> configs = {
      {2, 2}, {3, 2}, {4, 2}, {5, 2}, {3, 3}, {4, 3}};
  for (const auto& [k, n] : configs) {
    const auto r = coll::simulate_atab_on_torus(k, n);
    EXPECT_TRUE(r.complete) << "k=" << k << " n=" << n;
    EXPECT_EQ(r.lower_bound, coll::atab_lower_bound(k, n));
    EXPECT_GE(r.steps, r.lower_bound) << "k=" << k << " n=" << n;
    EXPECT_LE(r.steps, 2 * r.lower_bound) << "k=" << k << " n=" << n;
  }

  // The schedule is deterministic: same config, same step count.
  const auto a = coll::simulate_atab_on_torus(4, 2);
  const auto b = coll::simulate_atab_on_torus(4, 2);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.steps, 5u);  // measured; the 4-ary 2-cube bound is 4
}

// ---------------------------------------------------------------------------
// Quiet-group phases: every op completes, every member observes every
// chunk, and nothing is ever re-issued.

TEST(CollPhase, BarrierCompletesOnQuietGroup) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::Collective coll(groups, gid);

  coll::PhaseResult result;
  bool done = false;
  coll.barrier([&](const coll::PhaseResult& r) {
    result = r;
    done = true;
  });
  EXPECT_TRUE(coll.busy());
  fx.run_until(groups, 5e-3);

  ASSERT_TRUE(done);
  EXPECT_FALSE(coll.busy());
  EXPECT_EQ(result.op, coll::OpKind::kBarrier);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.survivors, (std::vector<topo::NodeId>{0, 5, 10, 15}));
  EXPECT_EQ(result.chunks_reissued, 0u);
  EXPECT_EQ(result.restarts, 0u);
  for (const topo::NodeId m : result.roster) {
    EXPECT_TRUE(coll.observed_all(m)) << "member " << m;
  }
}

TEST(CollPhase, BroadcastReachesEveryMember) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::CollConfig cfg;
  cfg.chunks = 3;
  coll::Collective coll(groups, gid, cfg);

  EXPECT_THROW(coll.broadcast(7), std::invalid_argument);  // not a member

  coll::PhaseResult result;
  bool done = false;
  coll.broadcast(5, [&](const coll::PhaseResult& r) {
    result = r;
    done = true;
  });
  fx.run_until(groups, 5e-3);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.op, coll::OpKind::kBroadcast);
  EXPECT_EQ(result.chunks_sent, 3u);  // one multicast per chunk
  EXPECT_EQ(result.chunks_reissued, 0u);
  for (const topo::NodeId m : {0, 5, 10, 15}) {
    EXPECT_TRUE(coll.observed_all(m)) << "member " << m;
    EXPECT_EQ(coll.observed_chunks(m), 3u) << "member " << m;
  }
}

TEST(CollPhase, AllgatherEveryMemberHoldsEveryChunk) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::CollConfig cfg;
  cfg.chunks = 2;
  coll::Collective coll(groups, gid, cfg);

  coll::PhaseResult result;
  bool done = false;
  coll.allgather([&](const coll::PhaseResult& r) {
    result = r;
    done = true;
  });
  fx.run_until(groups, 5e-3);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.degraded);
  // 4 roots x 2 chunks, each exactly one multicast, never re-issued.
  EXPECT_EQ(result.chunks_sent, 8u);
  EXPECT_EQ(result.chunks_reissued, 0u);
  // Every (task, non-root member) pair delivered exactly once.
  EXPECT_EQ(coll.stats().chunks_delivered, 8u * 3u);
  for (const topo::NodeId m : {0, 5, 10, 15}) {
    EXPECT_TRUE(coll.observed_all(m)) << "member " << m;
    EXPECT_EQ(coll.observed_chunks(m), 8u) << "member " << m;
  }
}

TEST(CollPhase, AllreduceAppliesEachContributionExactlyOnce) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::CollConfig cfg;
  cfg.chunks = 4;
  coll::Collective coll(groups, gid, cfg);

  coll::PhaseResult result;
  bool done = false;
  coll.allreduce([&](const coll::PhaseResult& r) {
    result = r;
    done = true;
  });
  fx.run_until(groups, 5e-3);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.chunks_reissued, 0u);
  // Each of the 4 chunks collects one contribution per non-owner member.
  EXPECT_EQ(coll.stats().contributions_applied, 4u * 3u);
  EXPECT_EQ(coll.stats().double_applies, 0u);
  for (const topo::NodeId m : {0, 5, 10, 15}) {
    EXPECT_TRUE(coll.observed_all(m)) << "member " << m;
    EXPECT_EQ(coll.observed_chunks(m), 4u) << "member " << m;
  }
}

TEST(CollPhase, AllToAllBroadcastCompletes) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::CollConfig cfg;
  cfg.chunks = 1;
  coll::Collective coll(groups, gid, cfg);

  coll::PhaseResult result;
  bool done = false;
  coll.all_to_all_broadcast([&](const coll::PhaseResult& r) {
    result = r;
    done = true;
  });
  EXPECT_THROW(coll.barrier(), std::logic_error);  // one phase at a time
  fx.run_until(groups, 5e-3);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.op, coll::OpKind::kAllToAllBroadcast);
  EXPECT_EQ(result.chunks_sent, 4u);  // every member one concurrent multicast
  for (const topo::NodeId m : {0, 5, 10, 15}) {
    EXPECT_TRUE(coll.observed_all(m)) << "member " << m;
  }
}

TEST(CollPhase, PhasesChainBackToBack) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::Collective coll(groups, gid);

  std::vector<coll::PhaseResult> results;
  coll.allgather([&](const coll::PhaseResult& r1) {
    results.push_back(r1);
    coll.allreduce([&](const coll::PhaseResult& r2) {
      results.push_back(r2);
      coll.barrier([&](const coll::PhaseResult& r3) { results.push_back(r3); });
    });
  });
  fx.run_until(groups, 20e-3);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].op, coll::OpKind::kAllgather);
  EXPECT_EQ(results[1].op, coll::OpKind::kAllreduce);
  EXPECT_EQ(results[2].op, coll::OpKind::kBarrier);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].completed) << "phase " << i;
    EXPECT_EQ(results[i].phase_id, i + 1);
    // Later phases start at or after the previous completion.
    if (i > 0) {
      EXPECT_GE(results[i].started_at_s, results[i - 1].completed_at_s);
    }
  }
  EXPECT_EQ(coll.stats().phases_completed, 3u);
}

TEST(CollPhase, MetricsMirrorStats) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::Collective coll(groups, gid);
  obs::MetricsRegistry reg;
  coll.set_metrics(&reg);

  coll.allgather([&](const coll::PhaseResult&) { coll.barrier(); });
  fx.run_until(groups, 10e-3);

  const auto& s = coll.stats();
  EXPECT_EQ(s.phases_completed, 2u);
  EXPECT_EQ(reg.counter("coll.phases_started").value(), s.phases_started);
  EXPECT_EQ(reg.counter("coll.phases_completed").value(), s.phases_completed);
  EXPECT_EQ(reg.counter("coll.chunks_sent").value(), s.chunks_sent);
  EXPECT_EQ(reg.counter("coll.chunks_delivered").value(), s.chunks_delivered);
  EXPECT_EQ(reg.counter("coll.double_applies").value(), 0u);
  EXPECT_EQ(reg.histogram("coll.phase_latency_s").snapshot().count, 2u);
}

// ---------------------------------------------------------------------------
// View-change-aware restart.

TEST(CollRestart, LeaveMidPhaseExcludesMemberAndCompletes) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::CollConfig cfg;
  cfg.chunks = 2;
  coll::Collective coll(groups, gid, cfg);

  coll::PhaseResult result;
  bool done = false;
  coll.allgather([&](const coll::PhaseResult& r) {
    result = r;
    done = true;
  });
  // Before any delivery lands: the leaver's in-flight destinations resolve
  // as kEvicted during the install, and the view-settled restart runs with
  // every chunk still outstanding.
  fx.sched.schedule_at(1e-9, [&] { groups.leave(gid, 15); });
  fx.run_until(groups, 5e-3);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.survivors, (std::vector<topo::NodeId>{0, 5, 10}));
  EXPECT_EQ(result.roster, (std::vector<topo::NodeId>{0, 5, 10, 15}));
  EXPECT_GE(result.restarts, 1u);
  // All live targets were already covered by the launch-time sends, so the
  // restart re-issued nothing.
  EXPECT_EQ(result.chunks_reissued, 0u);
  for (const topo::NodeId m : {0, 5, 10}) {
    EXPECT_TRUE(coll.observed_all(m)) << "survivor " << m;
  }
  EXPECT_FALSE(coll.observed_all(15));
  // No (task, member) pair ever delivered twice: 8 tasks, at most 3
  // non-root receivers each.
  EXPECT_LE(coll.stats().chunks_delivered, 8u * 3u);
  EXPECT_EQ(coll.stats().double_applies, 0u);
}

TEST(CollRestart, AllreduceOwnerLossNeverDoubleAppliesContributions) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});
  coll::CollConfig cfg;
  cfg.chunks = 4;  // owners are ranks 0..3, so node 15 owns chunk 3
  coll::Collective coll(groups, gid, cfg);

  coll::PhaseResult result;
  bool done = false;
  coll.allreduce([&](const coll::PhaseResult& r) {
    result = r;
    done = true;
  });
  // The owner of chunk 3 leaves before its reduction completes: the chunk
  // demotes to a new owner with a bumped generation, and every stale
  // generation-0 contribution outcome is discarded wholesale.
  fx.sched.schedule_at(1e-9, [&] { groups.leave(gid, 15); });
  fx.run_until(groups, 10e-3);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.survivors, (std::vector<topo::NodeId>{0, 5, 10}));
  EXPECT_GE(result.restarts, 1u);
  EXPECT_EQ(coll.stats().double_applies, 0u);
  for (const topo::NodeId m : {0, 5, 10}) {
    EXPECT_TRUE(coll.observed_all(m)) << "survivor " << m;
  }
}

TEST(CollRestart, ChunksStableInOldViewAreNeverResent) {
  // Measure the quiet completion time, then re-run with a leave injected
  // at fractions of it: whatever the cut point, no (task, member) pair is
  // ever delivered twice, and mid-to-late cuts find already-stable chunks
  // that the restart suppresses instead of re-sending.
  double quiet_s = 0.0;
  {
    Fixture fx(4, 4);
    svc::GroupService groups(fx.service);
    const auto gid = groups.create_group({0, 5, 10, 15});
    coll::CollConfig cfg;
    cfg.chunks = 2;
    coll::Collective coll(groups, gid, cfg);
    coll::PhaseResult result;
    bool done = false;
    coll.allgather([&](const coll::PhaseResult& r) {
      result = r;
      done = true;
    });
    fx.run_until(groups, 5e-3);
    ASSERT_TRUE(done);
    quiet_s = result.completed_at_s - result.started_at_s;
    ASSERT_GT(quiet_s, 0.0);
  }

  std::uint64_t suppressed_total = 0;
  for (const double frac : {0.25, 0.5, 0.75}) {
    Fixture fx(4, 4);
    svc::GroupService groups(fx.service);
    const auto gid = groups.create_group({0, 5, 10, 15});
    coll::CollConfig cfg;
    cfg.chunks = 2;
    coll::Collective coll(groups, gid, cfg);
    coll::PhaseResult result;
    bool done = false;
    coll.allgather([&](const coll::PhaseResult& r) {
      result = r;
      done = true;
    });
    fx.sched.schedule_at(frac * quiet_s, [&] { groups.leave(gid, 15); });
    fx.run_until(groups, 10e-3);

    ASSERT_TRUE(done) << "frac " << frac;
    EXPECT_TRUE(result.completed) << "frac " << frac;
    EXPECT_GE(result.restarts, 1u) << "frac " << frac;
    // 8 tasks x at most 3 non-root receivers: a re-send of a chunk some
    // member already held would push this past the bound.
    EXPECT_LE(coll.stats().chunks_delivered, 8u * 3u) << "frac " << frac;
    EXPECT_EQ(coll.stats().double_applies, 0u);
    for (const topo::NodeId m : result.survivors) {
      EXPECT_TRUE(coll.observed_all(m)) << "frac " << frac << " member " << m;
    }
    suppressed_total += coll.stats().sends_suppressed;
  }
  // At least one cut point caught chunks already stable in the old view.
  EXPECT_GT(suppressed_total, 0u);
}

// ---------------------------------------------------------------------------
// Seeded churn replay: phases keep completing across evictions, leaves,
// and joins, and every surviving roster member holds the full result.

struct CollChurnRun {
  std::vector<coll::PhaseResult> results;
  coll::Collective::Stats stats;
  std::vector<topo::NodeId> last_survivors;
  std::size_t last_observed_all = 0;  // survivors of the last phase holding it all
};

CollChurnRun run_coll_churn(coll::OpKind op, std::uint64_t seed) {
  Fixture fx(8, 8);
  svc::GroupService groups(fx.service);
  std::vector<topo::NodeId> init = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<topo::NodeId> cand;
  for (topo::NodeId i = 0; i < 16; ++i) cand.push_back(i);
  const auto gid = groups.create_group(init);

  svc::ChurnConfig cc;
  cc.t_begin_s = 50e-6;
  cc.t_end_s = 3e-3;
  cc.events_per_s = 1.5e3;
  cc.seed = seed;
  const auto schedule = svc::ChurnSchedule::random(init, cand, cc);
  schedule_churn(groups, gid, fx.sched, schedule);

  coll::CollConfig cfg;
  cfg.chunks = 2;
  coll::Collective coll(groups, gid, cfg);

  CollChurnRun out;
  std::function<void(const coll::PhaseResult&)> next =
      [&](const coll::PhaseResult& r) {
        out.results.push_back(r);
        if (fx.sched.now() < cc.t_end_s && groups.view(gid).members.size() >= 2) {
          if (op == coll::OpKind::kAllreduce) {
            coll.allreduce(next);
          } else {
            coll.allgather(next);
          }
        }
      };
  if (op == coll::OpKind::kAllreduce) {
    coll.allreduce(next);
  } else {
    coll.allgather(next);
  }

  fx.sched.schedule_at(cc.t_end_s + 20e-3, [&] { groups.stop(); });
  fx.sched.run();  // must terminate: no phase may wedge

  out.stats = coll.stats();
  if (!out.results.empty()) {
    out.last_survivors = out.results.back().survivors;
    for (const topo::NodeId m : out.last_survivors) {
      out.last_observed_all += coll.observed_all(m) ? 1 : 0;
    }
  }
  return out;
}

void check_coll_churn(const CollChurnRun& r, std::uint64_t seed) {
  ASSERT_FALSE(r.results.empty()) << "seed " << seed;
  // Every phase that started also completed (voiding bounds the worst
  // case, so nothing wedges), and phases never overlap.
  EXPECT_EQ(r.stats.phases_completed, r.stats.phases_started) << "seed " << seed;
  for (std::size_t i = 0; i < r.results.size(); ++i) {
    EXPECT_TRUE(r.results[i].completed) << "seed " << seed << " phase " << i;
  }
  // The exactly-once reduction guarantee holds across every restart.
  EXPECT_EQ(r.stats.double_applies, 0u) << "seed " << seed;
  // Every survivor of the final phase holds the complete (recoverable)
  // result -- the churn-replay acceptance check.
  EXPECT_EQ(r.last_observed_all, r.last_survivors.size()) << "seed " << seed;
}

TEST(CollChurn, AllgatherSurvivorsHoldFullResultAcrossSeeds) {
  for (const std::uint64_t seed : {11u, 42u, 77u}) {
    check_coll_churn(run_coll_churn(coll::OpKind::kAllgather, seed), seed);
  }
}

TEST(CollChurn, AllreduceNeverDoubleAppliesAcrossSeeds) {
  for (const std::uint64_t seed : {5u, 29u, 301u}) {
    check_coll_churn(run_coll_churn(coll::OpKind::kAllreduce, seed), seed);
  }
}

TEST(CollChurn, ReplaysDeterministically) {
  const CollChurnRun a = run_coll_churn(coll::OpKind::kAllgather, 99);
  const CollChurnRun b = run_coll_churn(coll::OpKind::kAllgather, 99);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(a.stats.chunks_sent, b.stats.chunks_sent);
  EXPECT_EQ(a.stats.chunks_reissued, b.stats.chunks_reissued);
  EXPECT_EQ(a.stats.restarts, b.stats.restarts);
  EXPECT_EQ(a.last_survivors, b.last_survivors);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].completed_at_s, b.results[i].completed_at_s);
    EXPECT_EQ(a.results[i].survivors, b.results[i].survivors);
  }
}

}  // namespace
