// Integration tests locking the *shape* of the Chapter 7 results: each
// test is a scaled-down version of a figure with generous margins, so the
// paper's qualitative findings are enforced by CI, not only by the bench
// binaries.
#include <gtest/gtest.h>

#include "core/route_factory.hpp"
#include "evsim/random.hpp"
#include "wormhole/experiment.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;
using mcast::MeshRoutingSuite;
using mcast::MulticastRequest;
using topo::Mesh2D;
using topo::NodeId;

double mean_additional(const topo::Topology& t,
                       const std::function<mcast::MulticastRoute(const MulticastRequest&)>& f,
                       std::uint32_t k, int runs, std::uint64_t seed) {
  evsim::Rng rng(seed);
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    const NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    const MulticastRequest req{src, rng.sample_destinations(t.num_nodes(), src, k)};
    total += static_cast<double>(f(req).additional_traffic(k));
  }
  return total / runs;
}

worm::DynamicResult run_point(const MeshRoutingSuite& suite, Algorithm algo,
                              std::uint8_t copies, double interarrival_us,
                              std::uint32_t dests, bool fixed_dests) {
  worm::DynamicConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = copies};
  cfg.traffic = {.mean_interarrival_s = interarrival_us * 1e-6,
                 .avg_destinations = dests,
                 .fixed_destinations = fixed_dests,
                 .exponential_interarrival = false,
                 .seed = 33};
  cfg.target_messages = 500;
  cfg.max_messages = 1500;
  cfg.max_sim_time_s = 0.05;
  cfg.batch_size = 200;
  const worm::RouteBuilder builder = [&suite, algo, copies](
                                         NodeId src, const std::vector<NodeId>& d) {
    return worm::make_worm_specs(suite.mesh(), suite.route(algo, MulticastRequest{src, d}),
                                 copies);
  };
  return run_dynamic(suite.mesh(), builder, cfg);
}

// Fig. 7.1 shape: sorted MP beats multi-unicast for moderate k and beats
// broadcast everywhere on a 32x32 mesh.
TEST(FigureShapes, Fig71SortedMpBeatsBaselines) {
  const Mesh2D mesh(32, 32);
  const MeshRoutingSuite suite(mesh);
  const auto mp = [&](const MulticastRequest& r) { return suite.route(Algorithm::kSortedMP, r); };
  const auto uni = [&](const MulticastRequest& r) {
    return suite.route(Algorithm::kMultiUnicast, r);
  };
  for (const std::uint32_t k : {50u, 200u, 500u}) {
    EXPECT_LT(mean_additional(mesh, mp, k, 60, k), mean_additional(mesh, uni, k, 60, k))
        << "k=" << k;
    EXPECT_LT(mean_additional(mesh, mp, k, 60, k), 1023.0 - k) << "k=" << k;
  }
}

// Fig. 7.4 shape: greedy ST generates less traffic than the LEN heuristic
// on the hypercube.
TEST(FigureShapes, Fig74GreedyStBeatsLen) {
  const topo::Hypercube cube(8);
  const mcast::CubeRoutingSuite suite(cube);
  const auto st = [&](const MulticastRequest& r) { return suite.route(Algorithm::kGreedyST, r); };
  const auto len = [&](const MulticastRequest& r) { return suite.route(Algorithm::kLenTree, r); };
  for (const std::uint32_t k : {20u, 60u, 120u}) {
    EXPECT_LT(mean_additional(cube, st, k, 80, k + 1),
              mean_additional(cube, len, k, 80, k + 1))
        << "k=" << k;
  }
}

// Fig. 7.7 shape: fixed-path wastes channels for small sets and converges
// to dual-path for large ones; multi-path <= dual-path on average.
TEST(FigureShapes, Fig77PathTrafficOrdering) {
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  const auto make = [&](Algorithm a) {
    return [&suite, a](const MulticastRequest& r) { return suite.route(a, r); };
  };
  const double dual_small = mean_additional(mesh, make(Algorithm::kDualPath), 4, 200, 1);
  const double fixed_small = mean_additional(mesh, make(Algorithm::kFixedPath), 4, 200, 1);
  EXPECT_GT(fixed_small, 2.0 * dual_small);
  const double dual_large = mean_additional(mesh, make(Algorithm::kDualPath), 55, 200, 2);
  const double fixed_large = mean_additional(mesh, make(Algorithm::kFixedPath), 55, 200, 2);
  EXPECT_LT(fixed_large, 1.2 * dual_large);
  const double multi_mid = mean_additional(mesh, make(Algorithm::kMultiPath), 20, 300, 3);
  const double dual_mid = mean_additional(mesh, make(Algorithm::kDualPath), 20, 300, 3);
  EXPECT_LE(multi_mid, dual_mid * 1.02);
}

// Fig. 7.9 shape: with many destinations the lock-step tree's latency on a
// double-channel mesh dwarfs the path algorithms'.
TEST(FigureShapes, Fig79TreeDegradesWithDestinations) {
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  const auto tree = run_point(suite, Algorithm::kDCXFirstTree, 2, 300, 30, true);
  const auto dual = run_point(suite, Algorithm::kDualPath, 2, 300, 30, true);
  EXPECT_GT(tree.mean_latency_us, 3.0 * dual.mean_latency_us);
}

// Fig. 7.11 shape: at high load and many destinations, multi-path's source
// hot spots make it worse than dual-path.
TEST(FigureShapes, Fig711MultiPathHotSpots) {
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  const auto multi = run_point(suite, Algorithm::kMultiPath, 1, 400, 30, true);
  const auto dual = run_point(suite, Algorithm::kDualPath, 1, 400, 30, true);
  EXPECT_GT(multi.mean_latency_us, 1.5 * dual.mean_latency_us);
}

// Fig. 7.8 shape: at a load where paths are fine, the tree algorithm is
// already far slower.
TEST(FigureShapes, Fig78TreeSaturatesFirst) {
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  const auto tree = run_point(suite, Algorithm::kDCXFirstTree, 2, 180, 10, false);
  const auto multi = run_point(suite, Algorithm::kMultiPath, 2, 180, 10, false);
  EXPECT_GT(tree.mean_latency_us, 2.0 * multi.mean_latency_us);
  EXPECT_LT(multi.mean_latency_us, 40.0);
}

}  // namespace
