// Observability layer: JSON document type, metrics instruments and their
// percentile math, trace output format, and the bench result schema.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/route_cache.hpp"
#include "core/router.hpp"
#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/experiment.hpp"

namespace {

using namespace mcnet;
using obs::Histogram;
using obs::Json;

// --------------------------------------------------------------------------
// Json
// --------------------------------------------------------------------------

TEST(Json, BuildsAndDumpsDocuments) {
  Json doc = Json::object();
  doc["name"] = Json("bench");
  doc["count"] = Json(3);
  doc["ok"] = Json(true);
  doc["nothing"] = Json(nullptr);
  Json arr = Json::array();
  arr.push_back(Json(1.5));
  arr.push_back(Json("two"));
  doc["items"] = arr;
  EXPECT_EQ(doc.dump(),
            R"({"name":"bench","count":3,"ok":true,"nothing":null,"items":[1.5,"two"]})");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Json doc = Json::object();
  doc["nan"] = Json(std::numeric_limits<double>::quiet_NaN());
  doc["inf"] = Json(std::numeric_limits<double>::infinity());
  EXPECT_EQ(doc.dump(), R"({"nan":null,"inf":null})");
}

TEST(Json, RoundTripsThroughParse) {
  const std::string text =
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny\"z\\", "d": false}, "e": null})";
  std::string error;
  const auto doc = Json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto again = Json::parse(doc->dump(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(doc->dump(), again->dump());
  EXPECT_DOUBLE_EQ(doc->find("a")->at(2).as_double(), -300.0);
  EXPECT_EQ(doc->find("b")->find("c")->as_string(), "x\ny\"z\\");
}

TEST(Json, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\":1} x",
                          "\"unterminated", "{'a':1}"}) {
    std::string error;
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, ParseHandlesUnicodeEscapes) {
  const auto doc = Json::parse("\"a\\u0041\\u00e9b\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(),
            "aA\xc3\xa9"
            "b");  // A = 'A', é = e-acute in UTF-8
}

// --------------------------------------------------------------------------
// Histogram / registry
// --------------------------------------------------------------------------

TEST(Histogram, BucketIndexIsMonotoneAndBounded) {
  std::size_t prev = 0;
  for (double v = Histogram::kMinValue; v < 20.0; v *= 1.05) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_GE(i, prev);
    EXPECT_LT(i, Histogram::kNumBuckets);
    prev = i;
  }
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e30), Histogram::kNumBuckets - 1);
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  for (double v : {2e-9, 1e-6, 3.7e-4, 0.42, 1.0, 17.0}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lower(i), v) << v;
    EXPECT_GT(Histogram::bucket_upper(i), v) << v;
  }
}

TEST(Histogram, SingleSamplePercentilesAreExact) {
  Histogram h;
  h.record(3.5e-4);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.5e-4);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 3.5e-4);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5e-4);
  EXPECT_DOUBLE_EQ(s.max, 3.5e-4);
}

TEST(Histogram, PercentilesTrackUniformDataWithinBucketError) {
  Histogram h;
  const int n = 10000;
  for (int i = 1; i <= n; ++i) h.record(i * 1e-6);  // uniform on (0, 10ms]
  // Log-bucketing with 8 buckets/octave bounds relative error by
  // 2^(1/8) - 1 ~ 9 %.
  const double tolerance = 0.095;
  EXPECT_NEAR(h.percentile(0.5), 5e-3, 5e-3 * tolerance);
  EXPECT_NEAR(h.percentile(0.9), 9e-3, 9e-3 * tolerance);
  EXPECT_NEAR(h.percentile(0.99), 9.9e-3, 9.9e-3 * tolerance);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(n));
  EXPECT_NEAR(h.sum(), n * (n + 1) / 2 * 1e-6, 1e-6);
}

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(MetricsRegistry, ReturnsStableReferencesByName) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  a.inc(2);
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 2u);
  obs::Gauge& g = reg.gauge("busy");
  g.add(1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("busy").value(), 2.0);
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
}

TEST(MetricsRegistry, ConcurrentRecordingIsLossless) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("events");
  obs::Histogram& h = reg.histogram("lat");
  std::vector<std::thread> workers;
  constexpr int kThreads = 4, kPer = 5000;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        c.inc();
        h.record(1e-6);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPer));
}

TEST(MetricsRegistry, DumpsStructuredJson) {
  obs::MetricsRegistry reg;
  reg.counter("n.count").inc(7);
  reg.gauge("n.busy").set(0.5);
  reg.histogram("n.lat").record(2e-6);
  const Json j = reg.to_json();
  ASSERT_TRUE(j.is_object());
  EXPECT_DOUBLE_EQ(j.find("counters")->find("n.count")->as_double(), 7.0);
  EXPECT_DOUBLE_EQ(j.find("gauges")->find("n.busy")->as_double(), 0.5);
  const Json* hist = j.find("histograms")->find("n.lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(hist->find("p50")->as_double(), 2e-6);
}

// --------------------------------------------------------------------------
// Network metrics + tracer wiring (through run_dynamic)
// --------------------------------------------------------------------------

worm::DynamicConfig small_config() {
  worm::DynamicConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 16, .channel_copies = 1};
  cfg.traffic = {.mean_interarrival_s = 100e-6,
                 .avg_destinations = 3,
                 .fixed_destinations = true,
                 .exponential_interarrival = false,
                 .seed = 11};
  cfg.target_messages = 40;
  cfg.max_messages = 200;
  cfg.max_sim_time_s = 0.5;
  cfg.batch_size = 10;
  return cfg;
}

TEST(NetworkMetrics, CountsMatchExperimentResult) {
  const topo::Mesh2D mesh(4, 4);
  const auto router = mcast::make_caching_router(mesh, mcast::Algorithm::kDualPath, 1);
  obs::MetricsRegistry reg;
  worm::DynamicConfig cfg = small_config();
  cfg.metrics = &reg;
  router->set_metrics(&reg);
  const worm::DynamicResult r = worm::run_dynamic(*router, cfg);
  EXPECT_EQ(reg.counter("network.deliveries").value(), r.deliveries);
  EXPECT_GE(reg.counter("network.injections").value(), r.messages_completed);
  EXPECT_EQ(reg.histogram("network.delivery_latency_s").count(), r.deliveries);
  // Histogram records seconds; the mean must agree with the result's us.
  const double mean_s = reg.histogram("network.delivery_latency_s").snapshot().mean();
  EXPECT_NEAR(mean_s * 1e6, r.mean_latency_us, r.mean_latency_us * 0.01 + 1e-9);
  const auto& cache_hits = reg.counter("route_cache.hits");
  const auto& cache_misses = reg.counter("route_cache.misses");
  EXPECT_EQ(cache_hits.value() + cache_misses.value(),
            router->stats().hits + router->stats().misses);
}

TEST(EventTracer, ProducesParseableChromeTrace) {
  const topo::Mesh2D mesh(4, 4);
  const auto router = mcast::make_caching_router(mesh, mcast::Algorithm::kDualPath, 1);
  obs::EventTracer tracer;
  worm::DynamicConfig cfg = small_config();
  cfg.tracer = &tracer;
  const worm::DynamicResult r = worm::run_dynamic(*router, cfg);
  ASSERT_GT(r.deliveries, 0u);
  EXPECT_GT(tracer.size(), 0u);

  std::string error;
  const auto doc = Json::parse(tracer.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);

  bool saw_metadata = false, saw_complete = false, saw_instant = false;
  for (const Json& e : events->items()) {
    const std::string ph = e.find("ph")->as_string();
    ASSERT_TRUE(e.contains("name"));
    ASSERT_TRUE(e.contains("pid"));
    ASSERT_TRUE(e.contains("tid"));
    if (ph == "M") {
      saw_metadata = true;
    } else if (ph == "X") {
      saw_complete = true;
      EXPECT_GE(e.find("dur")->as_double(), 0.0);
      EXPECT_GE(e.find("ts")->as_double(), 0.0);
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.find("s")->as_string(), "t");
    }
  }
  EXPECT_TRUE(saw_metadata);   // process/thread names for the lanes
  EXPECT_TRUE(saw_complete);   // channel occupancy slices
  EXPECT_TRUE(saw_instant);    // injections/deliveries
}

TEST(EventTracer, BoundedBufferDropsInsteadOfGrowing) {
  obs::EventTracer tracer(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) tracer.instant("e", "cat", i * 1e-6, 1, 1);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto doc = Json::parse(tracer.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("traceEvents")->size(), 4u);
}

// --------------------------------------------------------------------------
// Bench schema
// --------------------------------------------------------------------------

Json valid_bench_doc() {
  std::string error;
  auto doc = Json::parse(R"({
    "schema": "mcnet-bench-v1",
    "bench": "bench_test",
    "scale": 1.0,
    "wall_clock_s": 0.5,
    "series": [
      {"name": "algo", "points": [
        {"x": 1, "y": 2.5},
        {"x": 2, "y": 3.5, "ci_half_us": 0.25, "ci_valid": true},
        {"x": 3, "y": 4.5, "ci_half_us": null, "ci_valid": false}
      ]}
    ]
  })",
                         &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return *doc;
}

TEST(BenchSchema, AcceptsValidDocument) {
  std::string error;
  EXPECT_TRUE(obs::validate_bench_json(valid_bench_doc(), &error)) << error;
}

TEST(BenchSchema, RejectsBrokenDocuments) {
  struct Case {
    const char* what;
    std::function<void(Json&)> breakit;
  };
  const std::vector<Case> cases = {
      {"wrong schema", [](Json& d) { d["schema"] = Json("other-v2"); }},
      {"missing bench", [](Json& d) { d["bench"] = Json(nullptr); }},
      {"series not array", [](Json& d) { d["series"] = Json("nope"); }},
      {"negative scale", [](Json& d) { d["scale"] = Json(-1.0); }},
      {"nan wall clock",
       [](Json& d) { d["wall_clock_s"] = Json(std::numeric_limits<double>::quiet_NaN()); }},
  };
  for (const auto& c : cases) {
    Json doc = valid_bench_doc();
    c.breakit(doc);
    std::string error;
    EXPECT_FALSE(obs::validate_bench_json(doc, &error)) << c.what;
    EXPECT_FALSE(error.empty()) << c.what;
  }
}

TEST(BenchSchema, EnforcesCiValidityRules) {
  // ci_valid: true with a null ci_half_us is a contradiction.
  Json doc = Json::parse(R"({
    "schema": "mcnet-bench-v1", "bench": "b", "scale": 1, "wall_clock_s": 0, "series": [
      {"name": "s", "points": [{"x": 1, "y": 2, "ci_valid": true, "ci_half_us": null}]}
    ]})")
                 .value();
  std::string error;
  EXPECT_FALSE(obs::validate_bench_json(doc, &error));
  EXPECT_NE(error.find("ci_valid"), std::string::npos) << error;

  // ci_valid: false with a numeric ci_half_us is equally contradictory.
  doc = Json::parse(R"({
    "schema": "mcnet-bench-v1", "bench": "b", "scale": 1, "wall_clock_s": 0, "series": [
      {"name": "s", "points": [{"x": 1, "y": 2, "ci_valid": false, "ci_half_us": 0.5}]}
    ]})")
            .value();
  EXPECT_FALSE(obs::validate_bench_json(doc, &error));
  EXPECT_NE(error.find("ci_valid"), std::string::npos) << error;

  // A point without x/y is invalid.
  doc = Json::parse(R"({
    "schema": "mcnet-bench-v1", "bench": "b", "scale": 1, "wall_clock_s": 0, "series": [
      {"name": "s", "points": [{"y": 2}]}
    ]})")
            .value();
  EXPECT_FALSE(obs::validate_bench_json(doc, &error));
  EXPECT_NE(error.find("\"x\""), std::string::npos) << error;
}

}  // namespace
