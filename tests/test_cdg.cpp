#include <gtest/gtest.h>

#include "cdg/analyzers.hpp"
#include "cdg/channel_graph.hpp"
#include "topology/hamiltonian.hpp"

namespace {

using namespace mcnet;
using cdg::ChannelGraph;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;

TEST(ChannelGraph, DetectsCycles) {
  ChannelGraph g(4);
  g.add_dependency(0, 1);
  g.add_dependency(1, 2);
  g.add_dependency(2, 3);
  EXPECT_TRUE(g.acyclic());
  g.add_dependency(3, 1);
  EXPECT_FALSE(g.acyclic());
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  // The cycle should be 1 -> 2 -> 3 (-> 1).
  EXPECT_EQ(cycle->size(), 3u);
}

TEST(ChannelGraph, DeduplicatesDependencies) {
  ChannelGraph g(2);
  g.add_dependency(0, 1);
  g.add_dependency(0, 1);
  EXPECT_EQ(g.num_dependencies(), 1u);
}

TEST(Cdg, XFirstRoutingIsDeadlockFreeOnMesh) {
  // Fig. 2.5: the CDG of X-first routing has no cycle.
  const Mesh2D mesh(4, 4);
  const ChannelGraph g = cdg::build_unicast_cdg(mesh, cdg::xfirst_routing(mesh));
  EXPECT_TRUE(g.acyclic());
  EXPECT_GT(g.num_dependencies(), 0u);
}

TEST(Cdg, QuadrantTurnRoutingHasCycles) {
  // A deliberately bad deterministic routing that produces all four turn
  // types (east->north, north->west, west->south, south->east), closing
  // the classic four-channel cycle of Fig. 2.4: X-first in the NE/SW
  // quadrants, Y-first in the NW/SE quadrants.
  const Mesh2D mesh(3, 3);
  const auto bad = [&mesh](NodeId cur, NodeId dst) -> NodeId {
    if (cur == dst) return topo::kInvalidNode;
    const topo::Coord2 c = mesh.coord(cur);
    const topo::Coord2 d = mesh.coord(dst);
    const std::int32_t sx = d.x > c.x ? 1 : (d.x < c.x ? -1 : 0);
    const std::int32_t sy = d.y > c.y ? 1 : (d.y < c.y ? -1 : 0);
    if (sx == 0) return mesh.node(c.x, c.y + sy);
    if (sy == 0) return mesh.node(c.x + sx, c.y);
    const bool x_first = (sx > 0) == (sy > 0);  // NE & SW quadrants
    return x_first ? mesh.node(c.x + sx, c.y) : mesh.node(c.x, c.y + sy);
  };
  const ChannelGraph g = cdg::build_unicast_cdg(mesh, bad);
  EXPECT_FALSE(g.acyclic());
}

TEST(Cdg, EcubeRoutingIsDeadlockFreeOnCube) {
  const Hypercube cube(4);
  const ChannelGraph g = cdg::build_unicast_cdg(cube, cdg::ecube_routing(cube));
  EXPECT_TRUE(g.acyclic());
}

TEST(Cdg, LabelRoutingSubnetworksAreAcyclic) {
  // The key deadlock-freedom argument of Chapter 6: R restricted to the
  // high (resp. low) channel subnetwork produces an acyclic CDG.
  const Mesh2D mesh(4, 4);
  const ham::MeshBoustrophedonLabeling mlab(mesh);
  for (const bool high : {true, false}) {
    const ChannelGraph g =
        cdg::build_unicast_cdg(mesh, cdg::label_routing(mesh, mlab, high));
    EXPECT_TRUE(g.acyclic()) << "mesh high=" << high;
  }

  const Hypercube cube(4);
  const ham::HypercubeGrayLabeling clab(cube);
  for (const bool high : {true, false}) {
    const ChannelGraph g =
        cdg::build_unicast_cdg(cube, cdg::label_routing(cube, clab, high));
    EXPECT_TRUE(g.acyclic()) << "cube high=" << high;
  }
}

TEST(Cdg, HighChannelSubnetworkIsAcyclicAsNodeGraph) {
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, [&](NodeId u, NodeId v) {
    return lab.label(u) < lab.label(v);
  }));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, [&](NodeId u, NodeId v) {
    return lab.label(u) > lab.label(v);
  }));
  // The whole network, by contrast, has node-graph cycles.
  EXPECT_FALSE(cdg::subnetwork_is_acyclic(mesh, [](NodeId, NodeId) { return true; }));
}

TEST(Cdg, QuadrantSubnetworksAreAcyclic) {
  // Section 6.2.1: each N_{sx,sy} quadrant subnetwork is acyclic.
  const Mesh2D mesh(4, 3);
  const auto in_quadrant = [&mesh](std::int32_t sx, std::int32_t sy) {
    return [&mesh, sx, sy](NodeId u, NodeId v) {
      const topo::Coord2 a = mesh.coord(u);
      const topo::Coord2 b = mesh.coord(v);
      return (b.x - a.x == sx && b.y == a.y) || (b.y - a.y == sy && b.x == a.x);
    };
  };
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, in_quadrant(+1, +1)));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, in_quadrant(-1, +1)));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, in_quadrant(-1, -1)));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, in_quadrant(+1, -1)));
}

TEST(Cdg, RoutingFunctionSanityChecks) {
  const Mesh2D mesh(3, 3);
  // A routing function that returns non-neighbours must be rejected.
  const auto teleport = [](NodeId cur, NodeId dst) -> NodeId {
    return cur == dst ? topo::kInvalidNode : dst;
  };
  EXPECT_THROW(cdg::build_unicast_cdg(mesh, teleport), std::logic_error);
  // A non-terminating routing function must be rejected.
  const auto pingpong = [&mesh](NodeId cur, NodeId) -> NodeId {
    return mesh.neighbors(cur)[0];
  };
  EXPECT_THROW(cdg::build_unicast_cdg(mesh, pingpong), std::logic_error);
}

}  // namespace
