#include <gtest/gtest.h>

#include <algorithm>

#include "cdg/analyzers.hpp"
#include "cdg/channel_graph.hpp"
#include "topology/hamiltonian.hpp"

namespace {

using namespace mcnet;
using cdg::ChannelGraph;
using topo::ChannelId;
using topo::Hypercube;
using topo::KAryNCube;
using topo::Mesh2D;
using topo::Mesh3D;
using topo::NodeId;

// Every consecutive pair of the reported cycle (wrapping around) must be an
// actual edge of the graph.
void expect_is_cycle(const ChannelGraph& g, const std::vector<ChannelId>& cycle) {
  ASSERT_GE(cycle.size(), 2u);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const ChannelId from = cycle[i];
    const ChannelId to = cycle[(i + 1) % cycle.size()];
    const auto& succ = g.successors(from);
    EXPECT_TRUE(std::binary_search(succ.begin(), succ.end(), to))
        << "missing edge " << from << " -> " << to;
  }
}

TEST(ChannelGraph, DetectsCycles) {
  ChannelGraph g(4);
  g.add_dependency(0, 1);
  g.add_dependency(1, 2);
  g.add_dependency(2, 3);
  EXPECT_TRUE(g.acyclic());
  g.add_dependency(3, 1);
  EXPECT_FALSE(g.acyclic());
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  // The cycle should be 1 -> 2 -> 3 (-> 1).
  EXPECT_EQ(cycle->size(), 3u);
}

TEST(ChannelGraph, DeduplicatesDependencies) {
  ChannelGraph g(2);
  g.add_dependency(0, 1);
  g.add_dependency(0, 1);
  EXPECT_EQ(g.num_dependencies(), 1u);
}

TEST(ChannelGraph, FindsPlantedTwoCycle) {
  ChannelGraph g(5);
  g.add_dependency(3, 4);  // acyclic noise
  g.add_dependency(0, 1);
  g.add_dependency(1, 0);
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);
  expect_is_cycle(g, *cycle);
  EXPECT_TRUE(std::find(cycle->begin(), cycle->end(), 0u) != cycle->end());
  EXPECT_TRUE(std::find(cycle->begin(), cycle->end(), 1u) != cycle->end());
}

TEST(ChannelGraph, FindsPlantedLongCycle) {
  // 0 -> 1 -> 2 -> 3 -> 4 -> 0 plus a dead-end branch.
  ChannelGraph g(6);
  for (ChannelId c = 0; c < 5; ++c) g.add_dependency(c, (c + 1) % 5);
  g.add_dependency(2, 5);
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 5u);
  expect_is_cycle(g, *cycle);
}

TEST(ChannelGraph, ReportsDisjointCyclesOneAtATime) {
  // Two vertex-disjoint 2-cycles; filtering away the first must surface the
  // second.
  ChannelGraph g(6);
  g.add_dependency(0, 1);
  g.add_dependency(1, 0);
  g.add_dependency(4, 5);
  g.add_dependency(5, 4);
  const auto first = g.find_cycle();
  ASSERT_TRUE(first.has_value());
  expect_is_cycle(g, *first);
  const bool first_is_low = std::find(first->begin(), first->end(), 0u) != first->end();
  const auto second = g.find_cycle_if([&](ChannelId from, ChannelId) {
    return first_is_low ? from >= 4 : from < 4;
  });
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->size(), 2u);
  expect_is_cycle(g, *second);
  EXPECT_NE(first_is_low,
            std::find(second->begin(), second->end(), 0u) != second->end());
}

TEST(ChannelGraph, FindCycleIfCanBreakEveryCycle) {
  ChannelGraph g(3);
  g.add_dependency(0, 1);
  g.add_dependency(1, 2);
  g.add_dependency(2, 0);
  EXPECT_TRUE(g.find_cycle().has_value());
  EXPECT_FALSE(
      g.find_cycle_if([](ChannelId from, ChannelId to) { return !(from == 2 && to == 0); })
          .has_value());
}

TEST(ChannelGraph, EdgeTagsRecordProvenance) {
  ChannelGraph g(3);
  g.add_dependency(0, 1, 7);
  g.add_dependency(0, 1, 9);
  g.add_dependency(0, 1, 7);  // duplicate tag: not recorded twice
  g.add_dependency(1, 2);     // untagged edge
  EXPECT_EQ(g.num_dependencies(), 2u);
  const auto tags = g.edge_tags(0, 1);
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], 7u);
  EXPECT_EQ(tags[1], 9u);
  EXPECT_TRUE(g.edge_tags(1, 2).empty());
  EXPECT_TRUE(g.edge_tags(2, 0).empty());  // absent edge
}

TEST(ChannelGraph, EdgeTagSetsSaturate) {
  ChannelGraph g(2);
  for (cdg::EdgeTag t = 0; t < 10; ++t) g.add_dependency(0, 1, t);
  EXPECT_EQ(g.edge_tags(0, 1).size(), ChannelGraph::kMaxTagsPerEdge);
  EXPECT_EQ(g.num_dependencies(), 1u);
}

TEST(Cdg, XFirstRoutingIsDeadlockFreeOnMesh) {
  // Fig. 2.5: the CDG of X-first routing has no cycle.
  const Mesh2D mesh(4, 4);
  const ChannelGraph g = cdg::build_unicast_cdg(mesh, cdg::xfirst_routing(mesh));
  EXPECT_TRUE(g.acyclic());
  EXPECT_GT(g.num_dependencies(), 0u);
}

TEST(Cdg, QuadrantTurnRoutingHasCycles) {
  // A deliberately bad deterministic routing that produces all four turn
  // types (east->north, north->west, west->south, south->east), closing
  // the classic four-channel cycle of Fig. 2.4: X-first in the NE/SW
  // quadrants, Y-first in the NW/SE quadrants.
  const Mesh2D mesh(3, 3);
  const auto bad = [&mesh](NodeId cur, NodeId dst) -> NodeId {
    if (cur == dst) return topo::kInvalidNode;
    const topo::Coord2 c = mesh.coord(cur);
    const topo::Coord2 d = mesh.coord(dst);
    const std::int32_t sx = d.x > c.x ? 1 : (d.x < c.x ? -1 : 0);
    const std::int32_t sy = d.y > c.y ? 1 : (d.y < c.y ? -1 : 0);
    if (sx == 0) return mesh.node(c.x, c.y + sy);
    if (sy == 0) return mesh.node(c.x + sx, c.y);
    const bool x_first = (sx > 0) == (sy > 0);  // NE & SW quadrants
    return x_first ? mesh.node(c.x + sx, c.y) : mesh.node(c.x, c.y + sy);
  };
  const ChannelGraph g = cdg::build_unicast_cdg(mesh, bad);
  EXPECT_FALSE(g.acyclic());
}

TEST(Cdg, EcubeRoutingIsDeadlockFreeOnCube) {
  const Hypercube cube(4);
  const ChannelGraph g = cdg::build_unicast_cdg(cube, cdg::ecube_routing(cube));
  EXPECT_TRUE(g.acyclic());
}

TEST(Cdg, ZFirstRoutingIsDeadlockFreeOnMesh3) {
  // Dimension-order routing stays deadlock-free on 3-D meshes.
  for (const Mesh3D& mesh : {Mesh3D(3, 3, 3), Mesh3D(2, 3, 4)}) {
    const ChannelGraph g = cdg::build_unicast_cdg(mesh, cdg::zfirst_routing(mesh));
    EXPECT_TRUE(g.acyclic()) << mesh.name();
    EXPECT_GT(g.num_dependencies(), 0u);
  }
}

TEST(Cdg, DimensionOrderRoutingIsDeadlockFreeWithoutWraparound) {
  const KAryNCube mesh_like(4, 3, /*wrap=*/false);
  const ChannelGraph g = cdg::build_unicast_cdg(mesh_like, cdg::dimension_order_routing(mesh_like));
  EXPECT_TRUE(g.acyclic());
}

TEST(Cdg, DimensionOrderRoutingIsDeadlockFreeOnTinyRings) {
  // With k = 3 the shorter ring direction is always a single hop, so the
  // wrap channels never chain: the CDG stays acyclic.
  const KAryNCube tiny(3, 2, /*wrap=*/true);
  const ChannelGraph g = cdg::build_unicast_cdg(tiny, cdg::dimension_order_routing(tiny));
  EXPECT_TRUE(g.acyclic());
}

TEST(Cdg, DimensionOrderRoutingCyclesOnWraparoundRings) {
  // The classic torus result: with k >= 4 the ring channels close a
  // dependency cycle, which motivates virtual channels.
  for (const KAryNCube& torus : {KAryNCube(4, 2, true), KAryNCube(5, 1, true)}) {
    const ChannelGraph g = cdg::build_unicast_cdg(torus, cdg::dimension_order_routing(torus));
    const auto cycle = g.find_cycle();
    ASSERT_TRUE(cycle.has_value()) << torus.name();
    expect_is_cycle(g, *cycle);
  }
}

TEST(Cdg, LabelRoutingSubnetworksAreAcyclic) {
  // The key deadlock-freedom argument of Chapter 6: R restricted to the
  // high (resp. low) channel subnetwork produces an acyclic CDG.
  const Mesh2D mesh(4, 4);
  const ham::MeshBoustrophedonLabeling mlab(mesh);
  for (const bool high : {true, false}) {
    const ChannelGraph g =
        cdg::build_unicast_cdg(mesh, cdg::label_routing(mesh, mlab, high));
    EXPECT_TRUE(g.acyclic()) << "mesh high=" << high;
  }

  const Hypercube cube(4);
  const ham::HypercubeGrayLabeling clab(cube);
  for (const bool high : {true, false}) {
    const ChannelGraph g =
        cdg::build_unicast_cdg(cube, cdg::label_routing(cube, clab, high));
    EXPECT_TRUE(g.acyclic()) << "cube high=" << high;
  }

  // Beyond the paper's two host topologies: the mixed-radix Gray labelings
  // extend the argument to 3-D meshes and k-ary n-cubes.
  const Mesh3D mesh3(3, 3, 2);
  const auto m3lab = ham::MixedRadixGrayLabeling::for_mesh3d(mesh3);
  for (const bool high : {true, false}) {
    const ChannelGraph g =
        cdg::build_unicast_cdg(mesh3, cdg::label_routing(mesh3, m3lab, high));
    EXPECT_TRUE(g.acyclic()) << "mesh3 high=" << high;
    EXPECT_GT(g.num_dependencies(), 0u) << "mesh3 high=" << high;
  }

  const KAryNCube torus(4, 2, /*wrap=*/true);
  const auto klab = ham::MixedRadixGrayLabeling::for_kary(torus);
  for (const bool high : {true, false}) {
    const ChannelGraph g =
        cdg::build_unicast_cdg(torus, cdg::label_routing(torus, klab, high));
    EXPECT_TRUE(g.acyclic()) << "kary high=" << high;
  }
}

TEST(Cdg, HighChannelSubnetworkIsAcyclicAsNodeGraph) {
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, [&](NodeId u, NodeId v) {
    return lab.label(u) < lab.label(v);
  }));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, [&](NodeId u, NodeId v) {
    return lab.label(u) > lab.label(v);
  }));
  // The whole network, by contrast, has node-graph cycles.
  EXPECT_FALSE(cdg::subnetwork_is_acyclic(mesh, [](NodeId, NodeId) { return true; }));

  // Same partition argument on a 3-D mesh labeling.
  const Mesh3D mesh3(3, 2, 3);
  const auto m3lab = ham::MixedRadixGrayLabeling::for_mesh3d(mesh3);
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh3, [&](NodeId u, NodeId v) {
    return m3lab.label(u) < m3lab.label(v);
  }));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh3, [&](NodeId u, NodeId v) {
    return m3lab.label(u) > m3lab.label(v);
  }));
}

TEST(Cdg, QuadrantSubnetworksAreAcyclic) {
  // Section 6.2.1: each N_{sx,sy} quadrant subnetwork is acyclic.
  const Mesh2D mesh(4, 3);
  const auto in_quadrant = [&mesh](std::int32_t sx, std::int32_t sy) {
    return [&mesh, sx, sy](NodeId u, NodeId v) {
      const topo::Coord2 a = mesh.coord(u);
      const topo::Coord2 b = mesh.coord(v);
      return (b.x - a.x == sx && b.y == a.y) || (b.y - a.y == sy && b.x == a.x);
    };
  };
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, in_quadrant(+1, +1)));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, in_quadrant(-1, +1)));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, in_quadrant(-1, -1)));
  EXPECT_TRUE(cdg::subnetwork_is_acyclic(mesh, in_quadrant(+1, -1)));
}

TEST(Cdg, RoutingFunctionSanityChecks) {
  const Mesh2D mesh(3, 3);
  // A routing function that returns non-neighbours must be rejected.
  const auto teleport = [](NodeId cur, NodeId dst) -> NodeId {
    return cur == dst ? topo::kInvalidNode : dst;
  };
  EXPECT_THROW(cdg::build_unicast_cdg(mesh, teleport), std::logic_error);
  // A non-terminating routing function must be rejected.
  const auto pingpong = [&mesh](NodeId cur, NodeId) -> NodeId {
    return mesh.neighbors(cur)[0];
  };
  EXPECT_THROW(cdg::build_unicast_cdg(mesh, pingpong), std::logic_error);
}

}  // namespace
