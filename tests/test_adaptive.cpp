// Randomised-adaptive dual-path routing (Section 8.2 extension).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "analysis/scenario.hpp"
#include "core/adaptive_path.hpp"
#include "core/route_error.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using topo::Mesh2D;
using topo::NodeId;

TEST(AdaptivePath, CandidatesAreMonotoneAndReducing) {
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
      if (u == v) continue;
      const auto cand = mcast::monotone_candidates(mesh, lab, u, v);
      ASSERT_FALSE(cand.empty()) << u << "->" << v;
      const bool high = lab.label(v) > lab.label(u);
      for (const NodeId p : cand) {
        if (high) {
          EXPECT_GT(lab.label(p), lab.label(u));
          EXPECT_LE(lab.label(p), lab.label(v));
        } else {
          EXPECT_LT(lab.label(p), lab.label(u));
          EXPECT_GE(lab.label(p), lab.label(v));
        }
      }
    }
  }
}

TEST(AdaptivePath, RoutesAreValidAndMonotone) {
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(401);
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 20);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = adaptive_dual_path_route(mesh, lab, req, rng);
    verify_route(mesh, req, route);
    for (const auto& p : route.paths) {
      for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        if (p.channel_class == mcast::kHighChannelClass) {
          EXPECT_LT(lab.label(p.nodes[i]), lab.label(p.nodes[i + 1]));
        } else {
          EXPECT_GT(lab.label(p.nodes[i]), lab.label(p.nodes[i + 1]));
        }
      }
    }
  }
}

TEST(AdaptivePath, SameTrafficAsDeterministicDualPathOnMesh) {
  // On the 2-D mesh every monotone reducing choice lies on a shortest
  // path (Lemma 6.1), so the adaptive variant matches dual-path traffic
  // exactly -- it only diversifies *which* shortest path is used.
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(409);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 15);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    EXPECT_EQ(adaptive_dual_path_route(mesh, lab, req, rng).traffic(),
              dual_path_route(mesh, lab, req).traffic());
  }
}

TEST(AdaptivePath, ActuallyDiversifiesPaths) {
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(419);
  const MulticastRequest req{mesh.node(0, 0), {mesh.node(6, 5)}};
  std::set<std::vector<NodeId>> distinct;
  for (int i = 0; i < 50; ++i) {
    distinct.insert(adaptive_dual_path_route(mesh, lab, req, rng).paths[0].nodes);
  }
  EXPECT_GT(distinct.size(), 5u) << "randomisation should explore multiple shortest paths";
}

TEST(RouteError, CarriesWalkContext) {
  const mcast::RouteError err("adaptive routing stuck", 7, 12, 3);
  EXPECT_EQ(err.node(), 7u);
  EXPECT_EQ(err.node_label(), 12u);
  EXPECT_EQ(err.target(), 3u);
  const std::string what = err.what();
  EXPECT_NE(what.find("adaptive routing stuck"), std::string::npos);
  EXPECT_NE(what.find("node 7"), std::string::npos);
  EXPECT_NE(what.find("label 12"), std::string::npos);
  EXPECT_NE(what.find("toward node 3"), std::string::npos);
  // Existing catch sites keep working: RouteError is-a logic_error.
  const std::logic_error& base = err;
  EXPECT_NE(std::string(base.what()).find("stuck"), std::string::npos);
}

// Seeded sweep of the CI topology matrix: the adaptive walk must never
// throw RouteError (monotone candidate sets are non-empty and the hop
// budget generous on every supported labeled topology).
TEST(AdaptivePath, NeverThrowsAcrossTopologyMatrix) {
  for (const char* spec :
       {"mesh:5x4", "cube:4", "mesh3:3x3x3", "kary:4x2", "karymesh:4x3"}) {
    const auto fixture = mcnet::analysis::make_fixture(spec);
    ASSERT_TRUE(fixture.labeling != nullptr) << spec;
    const topo::Topology& net = *fixture.topology;
    evsim::Rng rng(1009);
    for (int trial = 0; trial < 200; ++trial) {
      const NodeId src = rng.uniform_int(0, net.num_nodes() - 1);
      const std::uint32_t k = rng.uniform_int(1, std::min<NodeId>(8, net.num_nodes() - 1));
      const MulticastRequest req{src, rng.sample_destinations(net.num_nodes(), src, k)};
      EXPECT_NO_THROW({
        const MulticastRoute route =
            adaptive_dual_path_route(net, *fixture.labeling, req, rng);
        verify_route(net, req, route);
      }) << spec << " trial " << trial;
    }
  }
}

}  // namespace
