// Randomised-adaptive dual-path routing (Section 8.2 extension).
#include <gtest/gtest.h>

#include <set>

#include "core/adaptive_path.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using topo::Mesh2D;
using topo::NodeId;

TEST(AdaptivePath, CandidatesAreMonotoneAndReducing) {
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
      if (u == v) continue;
      const auto cand = mcast::monotone_candidates(mesh, lab, u, v);
      ASSERT_FALSE(cand.empty()) << u << "->" << v;
      const bool high = lab.label(v) > lab.label(u);
      for (const NodeId p : cand) {
        if (high) {
          EXPECT_GT(lab.label(p), lab.label(u));
          EXPECT_LE(lab.label(p), lab.label(v));
        } else {
          EXPECT_LT(lab.label(p), lab.label(u));
          EXPECT_GE(lab.label(p), lab.label(v));
        }
      }
    }
  }
}

TEST(AdaptivePath, RoutesAreValidAndMonotone) {
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(401);
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 20);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = adaptive_dual_path_route(mesh, lab, req, rng);
    verify_route(mesh, req, route);
    for (const auto& p : route.paths) {
      for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        if (p.channel_class == mcast::kHighChannelClass) {
          EXPECT_LT(lab.label(p.nodes[i]), lab.label(p.nodes[i + 1]));
        } else {
          EXPECT_GT(lab.label(p.nodes[i]), lab.label(p.nodes[i + 1]));
        }
      }
    }
  }
}

TEST(AdaptivePath, SameTrafficAsDeterministicDualPathOnMesh) {
  // On the 2-D mesh every monotone reducing choice lies on a shortest
  // path (Lemma 6.1), so the adaptive variant matches dual-path traffic
  // exactly -- it only diversifies *which* shortest path is used.
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(409);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 15);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    EXPECT_EQ(adaptive_dual_path_route(mesh, lab, req, rng).traffic(),
              dual_path_route(mesh, lab, req).traffic());
  }
}

TEST(AdaptivePath, ActuallyDiversifiesPaths) {
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Rng rng(419);
  const MulticastRequest req{mesh.node(0, 0), {mesh.node(6, 5)}};
  std::set<std::vector<NodeId>> distinct;
  for (int i = 0; i < 50; ++i) {
    distinct.insert(adaptive_dual_path_route(mesh, lab, req, rng).paths[0].nodes);
  }
  EXPECT_GT(distinct.size(), 5u) << "randomisation should explore multiple shortest paths";
}

}  // namespace
