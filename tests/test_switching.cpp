// Switching-technology substrate: the Section 2.2 analytic latency models
// and the Section 2.3.4 store-and-forward buffer disciplines (buffer
// deadlock with a naive pool, deadlock freedom with structured classes).
#include <gtest/gtest.h>

#include "cdg/analyzers.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "switching/latency_models.hpp"
#include "switching/saf.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using topo::Mesh2D;
using topo::NodeId;

TEST(LatencyModels, MatchPaperFormulas) {
  const sw::SwitchingParams p{.message_bytes = 128,
                              .bandwidth = 20e6,
                              .header_bytes = 2,
                              .control_bytes = 2,
                              .flit_bytes = 1};
  // L/B = 6.4 us.
  EXPECT_NEAR(sw::store_and_forward_latency(p, 10), 6.4e-6 * 11, 1e-12);
  EXPECT_NEAR(sw::virtual_cut_through_latency(p, 10), 0.1e-6 * 10 + 6.4e-6, 1e-12);
  EXPECT_NEAR(sw::circuit_switching_latency(p, 10), 0.1e-6 * 10 + 6.4e-6, 1e-12);
  EXPECT_NEAR(sw::wormhole_latency(p, 10), 0.05e-6 * 10 + 6.4e-6, 1e-12);
}

TEST(LatencyModels, DistanceSensitivityOrdering) {
  // SAF grows linearly with distance; the cut-through family is almost
  // distance-independent (the Fig. 2.3 story).
  const sw::SwitchingParams p;
  const double saf_growth = sw::store_and_forward_latency(p, 20) -
                            sw::store_and_forward_latency(p, 1);
  const double wh_growth = sw::wormhole_latency(p, 20) - sw::wormhole_latency(p, 1);
  EXPECT_GT(saf_growth, 50 * wh_growth);
}

TEST(SafNetwork, SinglePacketLatencyIsHopsTimesPacketTime) {
  const Mesh2D mesh(6, 1);
  evsim::Scheduler sched;
  sw::SafParams params;
  params.packet_time = 1.0;
  params.structured = true;
  sw::SafNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  double latency = -1.0;
  net.set_on_delivered([&](std::uint32_t, double l) { latency = l; });
  net.inject(0, 5);
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_DOUBLE_EQ(latency, 5.0);  // (L/B) * D with the store at the source free
}

TEST(SafNetwork, ChannelSerialisesPackets) {
  const Mesh2D mesh(3, 1);
  evsim::Scheduler sched;
  sw::SafParams params;
  params.packet_time = 1.0;
  params.buffers_per_class = 4;
  sw::SafNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  std::vector<double> latencies;
  net.set_on_delivered([&](std::uint32_t, double l) { latencies.push_back(l); });
  net.inject(0, 2);
  net.inject(0, 2);
  sched.run();
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_DOUBLE_EQ(latencies[0], 2.0);
  EXPECT_DOUBLE_EQ(latencies[1], 3.0);  // one hop behind on the shared channel
}

TEST(SafNetwork, NaivePoolDeadlocks) {
  // The classic buffer deadlock: four packets chase each other around the
  // 2x2 mesh with one shared buffer per node.
  const Mesh2D mesh(2, 2);
  evsim::Scheduler sched;
  sw::SafParams params;
  params.structured = false;
  params.buffers_per_node = 1;
  params.packet_time = 1.0;
  sw::SafNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  // X-first paths: 0->1->3, 1->0->2, 3->2->0, 2->3->1 form a buffer cycle.
  net.inject(mesh.node(0, 0), mesh.node(1, 1));
  net.inject(mesh.node(1, 0), mesh.node(0, 1));
  net.inject(mesh.node(1, 1), mesh.node(0, 0));
  net.inject(mesh.node(0, 1), mesh.node(1, 0));
  sched.run();
  EXPECT_TRUE(net.stuck()) << "naive shared buffers must deadlock here";
  EXPECT_LT(net.packets_delivered(), 4u);
}

TEST(SafNetwork, StructuredPoolSurvivesTheSameWorkload) {
  const Mesh2D mesh(2, 2);
  evsim::Scheduler sched;
  sw::SafParams params;
  params.structured = true;
  params.buffers_per_class = 1;
  params.packet_time = 1.0;
  sw::SafNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  net.inject(mesh.node(0, 0), mesh.node(1, 1));
  net.inject(mesh.node(1, 0), mesh.node(0, 1));
  net.inject(mesh.node(1, 1), mesh.node(0, 0));
  net.inject(mesh.node(0, 1), mesh.node(1, 0));
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.packets_delivered(), 4u);
}

TEST(SafNetwork, StructuredPoolSurvivesRandomStress) {
  // Property: structured classes never deadlock, whatever the traffic.
  const Mesh2D mesh(5, 5);
  evsim::Scheduler sched;
  sw::SafParams params;
  params.structured = true;
  params.buffers_per_class = 1;
  params.packet_time = 1e-6;
  sw::SafNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  evsim::Rng rng(301);
  std::uint32_t injected = 0;
  for (int i = 0; i < 500; ++i) {
    const NodeId s = rng.uniform_int(0, mesh.num_nodes() - 1);
    const NodeId d = rng.uniform_int(0, mesh.num_nodes() - 1);
    if (s == d) continue;
    net.inject(s, d);
    ++injected;
  }
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.packets_delivered(), injected);
}

TEST(SafNetwork, NaivePoolWithAmpleBuffersAlsoSurvives) {
  // With more buffers than in-flight packets the naive pool is fine too --
  // "if the size of the buffer were unlimited, deadlock would never occur".
  const Mesh2D mesh(2, 2);
  evsim::Scheduler sched;
  sw::SafParams params;
  params.structured = false;
  params.buffers_per_node = 8;
  params.packet_time = 1.0;
  sw::SafNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  net.inject(mesh.node(0, 0), mesh.node(1, 1));
  net.inject(mesh.node(1, 0), mesh.node(0, 1));
  net.inject(mesh.node(1, 1), mesh.node(0, 0));
  net.inject(mesh.node(0, 1), mesh.node(1, 0));
  sched.run();
  EXPECT_TRUE(net.idle());
}

}  // namespace
