// Fault-tolerant delivery: the wormhole network under injected failures
// (worm kills, drops, aborts) and the service layer's reliable multicast
// (timeout, retry/backoff, delivery reports).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_router.hpp"
#include "service/multicast_service.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;
using Status = svc::DeliveryReport::Status;

// First-hop channel of the route the fixture's router picks for `req` --
// failing it mid-flight is guaranteed to hit a held link.
topo::ChannelId first_hop_channel(const fault::FaultAwareRouter& router,
                                  const mcast::MulticastRequest& req) {
  const mcast::MulticastRoute route = router.route(req);
  if (!route.paths.empty()) {
    return router.topology().channel(route.paths[0].nodes[0], route.paths[0].nodes[1]);
  }
  const auto& link = route.trees.at(0).links.at(0);
  return router.topology().channel(link.from, link.to);
}

struct Fixture {
  topo::Mesh2D mesh;
  std::shared_ptr<fault::FaultState> faults;
  std::unique_ptr<fault::FaultAwareRouter> router;
  evsim::Scheduler sched;
  svc::MulticastService service;

  explicit Fixture(std::uint32_t w, std::uint32_t h, worm::WormholeParams params = {})
      : mesh(w, h),
        faults(std::make_shared<fault::FaultState>(mesh)),
        router(fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults)),
        service(*router, params, sched) {}
};

TEST(FaultNetwork, MidFlightChannelFailureKillsAndDrops) {
  Fixture fx(4, 4);
  worm::Network& net = fx.service.network();

  bool done = false;
  const topo::ChannelId hop = first_hop_channel(*fx.router, {0, {15}});
  fx.service.multicast({0, {15}}, {}, [&](double) { done = true; });

  // Kill the first hop while the worm still holds it (it releases only
  // after the 128-flit tail drains, far past 60 ns).
  fx.sched.schedule_in(60e-9, [&, hop] { net.fail_channel(hop); });
  fx.sched.run();

  EXPECT_TRUE(done);  // the message completes (degraded), it never hangs
  EXPECT_EQ(net.worms_killed(), 1u);
  EXPECT_EQ(net.deliveries_dropped(), 1u);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.messages_completed(), 1u);
}

TEST(FaultNetwork, AbortMessageDropsUndelivered) {
  Fixture fx(4, 4);
  worm::Network& net = fx.service.network();
  bool done = false;
  const auto h = fx.service.multicast({0, {5, 10, 15}}, {}, [&](double) { done = true; });
  fx.sched.schedule_in(10e-9, [&, h] { net.abort_message(h); });
  fx.sched.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(net.idle());
  EXPECT_GE(net.deliveries_dropped(), 1u);
}

TEST(FaultService, ReliableDeliversEverythingWhenHealthy) {
  Fixture fx(4, 4);
  svc::DeliveryReport report;
  bool reported = false;
  fx.service.multicast_reliable({0, {5, 10, 15}}, [&](const svc::DeliveryReport& r) {
    report = r;
    reported = true;
  });
  fx.sched.run();
  ASSERT_TRUE(reported);
  ASSERT_EQ(report.destinations.size(), 3u);
  EXPECT_TRUE(report.all_delivered());
  EXPECT_EQ(report.attempts_used, 1u);
  for (const auto& d : report.destinations) {
    EXPECT_EQ(d.attempts, 1u);
    EXPECT_GT(d.latency_s, 0.0);
  }
  EXPECT_TRUE(fx.service.network().idle());
}

TEST(FaultService, RetryRedeliversAfterMidFlightFailure) {
  Fixture fx(4, 4);
  worm::Network& net = fx.service.network();

  svc::DeliveryReport report;
  bool reported = false;
  fx.service.multicast_reliable({0, {15}}, [&](const svc::DeliveryReport& r) {
    report = r;
    reported = true;
  });
  // Fail a link on the route while the worm holds it: attempt 1 drops, the
  // retry must route around the failure and deliver.
  const topo::ChannelId hop = first_hop_channel(*fx.router, {0, {15}});
  fx.sched.schedule_in(60e-9, [&, hop] { net.fail_channel(hop); });
  fx.sched.run();

  ASSERT_TRUE(reported);
  ASSERT_EQ(report.destinations.size(), 1u);
  EXPECT_EQ(report.destinations[0].node, 15u);
  EXPECT_EQ(report.destinations[0].status, Status::kDelivered);
  EXPECT_EQ(report.destinations[0].attempts, 2u);
  EXPECT_EQ(report.attempts_used, 2u);
  EXPECT_GE(net.worms_killed(), 1u);
  EXPECT_TRUE(net.idle());
}

TEST(FaultService, PartitionedDestinationReportedUnreachable) {
  Fixture fx(3, 3);
  worm::Network& net = fx.service.network();
  // Isolate corner 8 before sending.
  for (const topo::NodeId v : fx.mesh.neighbors(8)) {
    net.fail_channel(fx.mesh.channel(8, v));
    net.fail_channel(fx.mesh.channel(v, 8));
  }

  svc::DeliveryReport report;
  fx.service.multicast_reliable({0, {4, 8}},
                                [&](const svc::DeliveryReport& r) { report = r; });
  fx.sched.run();

  ASSERT_EQ(report.destinations.size(), 2u);
  EXPECT_EQ(report.destinations[0].node, 4u);
  EXPECT_EQ(report.destinations[0].status, Status::kDelivered);
  EXPECT_EQ(report.destinations[1].node, 8u);
  EXPECT_EQ(report.destinations[1].status, Status::kUnreachable);
  // No retry budget is burnt on a partitioned destination.
  EXPECT_EQ(report.destinations[1].attempts, 1u);
  EXPECT_TRUE(net.idle());
}

TEST(FaultService, RetryDetectsNewPartitionAsUnreachable) {
  Fixture fx(2, 2);
  worm::Network& net = fx.service.network();

  svc::DeliveryReport report;
  fx.service.multicast_reliable({0, {3}},
                                [&](const svc::DeliveryReport& r) { report = r; });
  // Cut node 3 off entirely while the worm is in flight: attempt 1 drops,
  // and the retry finds the destination unreachable.
  fx.sched.schedule_in(60e-9, [&] { net.fail_node(3); });
  fx.sched.run();

  ASSERT_EQ(report.destinations.size(), 1u);
  EXPECT_EQ(report.destinations[0].status, Status::kUnreachable);
  EXPECT_EQ(report.destinations[0].attempts, 2u);
  EXPECT_TRUE(net.idle());
}

TEST(FaultService, TimeoutAbortsBlockedAttemptAndReportsDropped) {
  // Two nodes, one link.  A long bulk message occupies the only channel for
  // ~100us; the reliable message behind it times out at 20us with no retry
  // budget left, so it must finish as kDropped -- and the run must end.
  worm::WormholeParams params;
  params.message_flits = 2000;
  Fixture fx(2, 1, params);

  bool bulk_done = false;
  fx.service.multicast({0, {1}}, {}, [&](double) { bulk_done = true; });

  svc::RetryPolicy policy;
  policy.max_attempts = 1;
  policy.timeout_s = 20e-6;
  svc::DeliveryReport report;
  bool reported = false;
  fx.service.multicast_reliable(
      {0, {1}},
      [&](const svc::DeliveryReport& r) {
        report = r;
        reported = true;
      },
      policy);
  fx.sched.run();

  EXPECT_TRUE(bulk_done);
  ASSERT_TRUE(reported);
  ASSERT_EQ(report.destinations.size(), 1u);
  EXPECT_EQ(report.destinations[0].status, Status::kDropped);
  EXPECT_NEAR(report.finished_at_s, 20e-6, 1e-9);  // settled by the timeout
  EXPECT_TRUE(fx.service.network().idle());
  EXPECT_EQ(fx.service.network().worms_killed(), 1u);
}

TEST(FaultService, RetryPolicyValidationNamesTheField) {
  const auto message_of = [](svc::RetryPolicy p) {
    try {
      p.validate();
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };

  svc::RetryPolicy p;
  EXPECT_EQ(message_of(p), "");  // defaults are valid

  p = svc::RetryPolicy{};
  p.max_attempts = 0;
  EXPECT_NE(message_of(p).find("max_attempts"), std::string::npos);

  p = svc::RetryPolicy{};
  p.timeout_s = 0.0;
  EXPECT_NE(message_of(p).find("timeout_s"), std::string::npos);
  p.timeout_s = -1.0;
  EXPECT_NE(message_of(p).find("timeout_s"), std::string::npos);

  p = svc::RetryPolicy{};
  p.backoff_initial_s = 0.0;
  EXPECT_NE(message_of(p).find("backoff_initial_s"), std::string::npos);

  p = svc::RetryPolicy{};
  p.backoff_factor = 0.5;
  EXPECT_NE(message_of(p).find("backoff_factor"), std::string::npos);

  p = svc::RetryPolicy{};
  p.jitter = 1.0;
  EXPECT_NE(message_of(p).find("jitter"), std::string::npos);
  p.jitter = -0.1;
  EXPECT_NE(message_of(p).find("jitter"), std::string::npos);
}

// Attempt accounting: a destination delivered on attempt n after earlier
// timeouts must report attempts == n, not 1.
TEST(FaultService, AttemptCountSurvivesEarlierTimeouts) {
  // Two nodes, one link.  Three bulk messages occupy the only channel for
  // ~300us; the reliable message times out twice and lands on attempt 3.
  worm::WormholeParams params;
  params.message_flits = 2000;
  Fixture fx(2, 1, params);

  fx.service.multicast({0, {1}});
  fx.service.multicast({0, {1}});
  fx.service.multicast({0, {1}});

  svc::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.timeout_s = 150e-6;
  policy.backoff_initial_s = 50e-6;
  svc::DeliveryReport report;
  std::vector<std::pair<topo::NodeId, double>> deliveries;
  fx.service.multicast_reliable(
      {0, {1}}, [&](const svc::DeliveryReport& r) { report = r; }, policy,
      [&](topo::NodeId dest, double latency) { deliveries.emplace_back(dest, latency); });
  fx.sched.run();

  ASSERT_EQ(report.destinations.size(), 1u);
  EXPECT_EQ(report.destinations[0].status, Status::kDelivered);
  EXPECT_EQ(report.destinations[0].attempts, 3u);
  EXPECT_EQ(report.attempts_used, 3u);
  // The per-delivery callback fired exactly once, before the report.
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].first, 1u);
  EXPECT_GT(deliveries[0].second, 0.0);
}

TEST(FaultService, PerDestinationAttemptsAreIndependent) {
  // Path 0-1-2, source 1.  Bulk traffic blocks 1->2, so destination 2
  // needs a retry while destination 0 delivers on attempt 1; the report
  // must keep the two attempt counts apart.
  worm::WormholeParams params;
  params.message_flits = 2000;
  Fixture fx(3, 1, params);

  fx.service.multicast({1, {2}});
  fx.service.multicast({1, {2}});

  svc::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.timeout_s = 150e-6;
  policy.backoff_initial_s = 50e-6;
  svc::DeliveryReport report;
  fx.service.multicast_reliable({1, {0, 2}},
                                [&](const svc::DeliveryReport& r) { report = r; }, policy);
  fx.sched.run();

  ASSERT_EQ(report.destinations.size(), 2u);
  EXPECT_EQ(report.destinations[0].node, 0u);
  EXPECT_EQ(report.destinations[0].status, Status::kDelivered);
  EXPECT_EQ(report.destinations[0].attempts, 1u);
  EXPECT_EQ(report.destinations[1].node, 2u);
  EXPECT_EQ(report.destinations[1].status, Status::kDelivered);
  EXPECT_EQ(report.destinations[1].attempts, 2u);
  EXPECT_EQ(report.attempts_used, 2u);
}

// Regression: Network::inject() completes a message synchronously when
// every worm dies at injection (route through already-failed hardware via
// a non-fault-aware router).  The service must pre-register its callbacks
// or the completion is silently lost and the done callback never fires.
TEST(FaultService, SynchronousInjectDeathStillFiresCallbacks) {
  const topo::Mesh2D mesh(3, 1);
  const auto plain = mcast::make_router(mesh, Algorithm::kDualPath);
  evsim::Scheduler sched;
  svc::MulticastService service(*plain, worm::WormholeParams{}, sched);

  // The plain router does not see faults, so the route 0->1->2 crosses the
  // failed middle node and every worm is killed inside inject().
  service.network().fail_node(1);

  bool done = false;
  int delivered = 0;
  service.multicast({0, {2}}, [&](topo::NodeId, double) { ++delivered; },
                    [&](double) { done = true; });
  sched.run();

  EXPECT_TRUE(done);  // previously lost: the completion fired mid-inject
  EXPECT_EQ(delivered, 0);
  EXPECT_TRUE(service.network().idle());
}

// Backoff jitter: deterministic per (jitter_seed, operation), and it must
// actually move the retry instants.
TEST(FaultService, RetryJitterIsDeterministicAndSpreadsBackoff) {
  const auto finish_time = [](double jitter, std::uint64_t seed) {
    worm::WormholeParams params;
    params.message_flits = 4000;  // blocks the only link past every retry
    Fixture fx(2, 1, params);
    fx.service.multicast({0, {1}});

    svc::RetryPolicy policy;
    policy.max_attempts = 3;
    policy.timeout_s = 20e-6;
    policy.backoff_initial_s = 40e-6;
    policy.backoff_factor = 2.0;
    policy.jitter = jitter;
    policy.jitter_seed = seed;
    double finished = -1.0;
    fx.service.multicast_reliable(
        {0, {1}}, [&](const svc::DeliveryReport& r) { finished = r.finished_at_s; },
        policy);
    fx.sched.run_until(1e-3);
    return finished;
  };

  // No jitter: timeouts at 20us + backoffs of 40us and 80us => 180us.
  EXPECT_NEAR(finish_time(0.0, 1), 180e-6, 1e-9);

  const double a = finish_time(0.4, 1);
  const double b = finish_time(0.4, 1);
  const double c = finish_time(0.4, 2);
  EXPECT_EQ(a, b);        // same seed: exact replay
  EXPECT_NE(a, c);        // different seed: different backoff draws
  EXPECT_NE(a, 180e-6);   // jitter actually moved the schedule
  // Total delay stays within the +-40% envelope of the 120us of backoff.
  EXPECT_GT(a, 60e-6 + 0.6 * 120e-6 - 1e-9);
  EXPECT_LT(a, 60e-6 + 1.4 * 120e-6 + 1e-9);
}

TEST(FaultService, ReliableRequiresFaultRouter) {
  const topo::Mesh2D mesh(3, 3);
  const auto plain = mcast::make_router(mesh, Algorithm::kDualPath);
  evsim::Scheduler sched;
  svc::MulticastService service(*plain, worm::WormholeParams{}, sched);
  EXPECT_THROW(service.multicast_reliable({0, {4}}, {}), std::logic_error);
  EXPECT_THROW(
      {
        Fixture fx(2, 2);
        svc::RetryPolicy bad;
        bad.max_attempts = 0;
        fx.service.multicast_reliable({0, {3}}, {}, bad);
      },
      std::invalid_argument);
}

// One full sweep under a random failure schedule; returns per-destination
// (node, status, attempts) tuples of every report, in issue order.
std::vector<std::tuple<topo::NodeId, Status, std::uint32_t>> run_sweep(std::uint64_t seed) {
  Fixture fx(4, 4);
  const fault::FaultPlan plan =
      fault::FaultPlan::random_link_failures(fx.mesh, 0.3, 0.0, 200e-6, seed);
  fault::schedule_fault_plan(fx.service.network(), fx.sched, plan);

  evsim::Rng rng(seed * 977 + 1);
  std::vector<std::tuple<topo::NodeId, Status, std::uint32_t>> out;
  int reports = 0;
  constexpr int kMessages = 24;
  for (int i = 0; i < kMessages; ++i) {
    const double t = static_cast<double>(i) * 12e-6;
    const topo::NodeId src = rng.uniform_int(0, 15);
    const auto dests = rng.sample_destinations(16, src, rng.uniform_int(1, 5));
    fx.sched.schedule_at(t, [&fx, &out, &reports, src, dests] {
      if (fx.service.network().faults().node_failed(src)) {
        ++reports;  // link failures only in this plan, but stay defensive
        return;
      }
      fx.service.multicast_reliable({src, dests}, [&](const svc::DeliveryReport& r) {
        ++reports;
        for (const auto& d : r.destinations) {
          out.emplace_back(d.node, d.status, d.attempts);
        }
      });
    });
  }
  fx.sched.run();  // must terminate: no reliable message may hang
  EXPECT_EQ(reports, kMessages);
  EXPECT_TRUE(fx.service.network().idle());
  return out;
}

TEST(FaultService, RandomFailureSweepTerminatesAndIsDeterministic) {
  const auto a = run_sweep(5);
  const auto b = run_sweep(5);
  EXPECT_EQ(a, b);  // same seed, same failures, same reports
  EXPECT_FALSE(a.empty());

  std::size_t delivered = 0;
  for (const auto& [node, status, attempts] : a) delivered += status == Status::kDelivered;
  // The mesh stays mostly connected at 30% cut links; most sends land.
  EXPECT_GT(delivered, a.size() / 2);
}

}  // namespace
