// The wormhole network simulator: channel pool semantics, exact worm
// timing, contention serialisation, and the Fig. 6.1 deadlock.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/dual_path.hpp"
#include "core/naive_tree.hpp"
#include "evsim/random.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/channel_pool.hpp"
#include "wormhole/deadlock.hpp"
#include "wormhole/network.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;
using worm::ChannelPool;
using worm::ChannelRequest;
using worm::Network;
using worm::NetworkHooks;
using worm::WormholeParams;

// --- ChannelPool ------------------------------------------------------------

TEST(ChannelPool, GrantsAndQueuesFcfs) {
  ChannelPool pool(4, 1);
  EXPECT_EQ(pool.acquire(0, {1, 0, 0}), std::optional<std::uint8_t>(0));
  EXPECT_EQ(pool.acquire(0, {2, 0, 0}), std::nullopt);
  EXPECT_EQ(pool.acquire(0, {3, 0, 0}), std::nullopt);
  EXPECT_EQ(pool.waiters(0).size(), 2u);
  auto grant = pool.release(0, 0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->first.worm_id, 2u);  // FCFS
  grant = pool.release(0, 0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->first.worm_id, 3u);
  EXPECT_FALSE(pool.release(0, 0).has_value());
  EXPECT_EQ(pool.busy_count(), 0u);
}

TEST(ChannelPool, AnyCopyUsesBothCopies) {
  ChannelPool pool(1, 2);
  EXPECT_EQ(pool.acquire(0, {1, 0, worm::kAnyCopy}), std::optional<std::uint8_t>(0));
  EXPECT_EQ(pool.acquire(0, {2, 0, worm::kAnyCopy}), std::optional<std::uint8_t>(1));
  EXPECT_EQ(pool.acquire(0, {3, 0, worm::kAnyCopy}), std::nullopt);
}

TEST(ChannelPool, SpecificCopyWaitsEvenIfOtherCopyFree) {
  ChannelPool pool(1, 2);
  EXPECT_EQ(pool.acquire(0, {1, 0, 0}), std::optional<std::uint8_t>(0));
  // Worm 2 insists on copy 0 although copy 1 is free.
  EXPECT_EQ(pool.acquire(0, {2, 0, 0}), std::nullopt);
  EXPECT_EQ(pool.acquire(0, {3, 0, 1}), std::optional<std::uint8_t>(1));
  // Releasing copy 1 must not wake the copy-0 waiter.
  EXPECT_FALSE(pool.release(0, 1).has_value());
  const auto grant = pool.release(0, 0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->first.worm_id, 2u);
}

TEST(ChannelPool, CancelRequestsRemovesWaiters) {
  ChannelPool pool(2, 1);
  (void)pool.acquire(0, {1, 0, 0});
  (void)pool.acquire(0, {2, 0, 0});
  (void)pool.acquire(0, {3, 0, 0});
  pool.cancel_requests(2);
  const auto grant = pool.release(0, 0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->first.worm_id, 3u);
}

// --- Worm timing ------------------------------------------------------------

struct Capture {
  std::map<NodeId, double> deliveries;
  std::map<std::uint64_t, double> completions;
  NetworkHooks hooks(double t0 = 0.0) {
    NetworkHooks h;
    h.on_delivery = [this, t0](std::uint64_t, NodeId d, double l) { deliveries[d] = l + t0; };
    h.on_message_done = [this](std::uint64_t m, double l) { completions[m] = l; };
    return h;
  }
};

TEST(Network, UncontendedPathTimingIsExact) {
  // Delivery at depth i completes at (i + L - 1) * tau; channel at depth d
  // frees at (d + L) * tau; worm finishes at (D + L) * tau.
  const Mesh2D mesh(6, 1);
  evsim::Scheduler sched;
  const WormholeParams params{.flit_time = 1.0, .message_flits = 4, .channel_copies = 1};
  Network net(mesh, params, sched);
  Capture cap;
  net.set_hooks(cap.hooks());

  mcast::MulticastRoute route;
  route.source = 0;
  mcast::PathRoute p;
  p.nodes = {0, 1, 2, 3, 4, 5};
  p.delivery_hops = {2, 5};  // destinations at depth 2 and 5
  route.paths.push_back(p);
  net.inject(worm::make_worm_specs(mesh, route, 1));
  sched.run();

  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.pool().busy_count(), 0u);
  ASSERT_EQ(cap.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(cap.deliveries[2], 2 + 4 - 1);  // 5 flit times
  EXPECT_DOUBLE_EQ(cap.deliveries[5], 5 + 4 - 1);  // 8 flit times
  EXPECT_DOUBLE_EQ(cap.completions[0], 5 + 4);     // D + L
}

TEST(Network, SingleFlitMessageDeliversWithHeader) {
  const Mesh2D mesh(4, 1);
  evsim::Scheduler sched;
  const WormholeParams params{.flit_time = 2.0, .message_flits = 1, .channel_copies = 1};
  Network net(mesh, params, sched);
  Capture cap;
  net.set_hooks(cap.hooks());
  mcast::MulticastRoute route;
  route.source = 0;
  mcast::PathRoute p;
  p.nodes = {0, 1, 2, 3};
  p.delivery_hops = {3};
  route.paths.push_back(p);
  net.inject(worm::make_worm_specs(mesh, route, 1));
  sched.run();
  EXPECT_DOUBLE_EQ(cap.deliveries[3], 3 * 2.0);  // pure header latency
}

TEST(Network, ContendedChannelSerialisesWorms) {
  // Two worms share channel 0->1; the second waits until the first's tail
  // clears it at (1 + L) tau, then needs 2 more hops + L - 1 drain.
  const Mesh2D mesh(3, 1);
  evsim::Scheduler sched;
  const WormholeParams params{.flit_time = 1.0, .message_flits = 8, .channel_copies = 1};
  Network net(mesh, params, sched);
  Capture cap;
  net.set_hooks(cap.hooks());
  mcast::MulticastRoute route;
  route.source = 0;
  mcast::PathRoute p;
  p.nodes = {0, 1, 2};
  p.delivery_hops = {2};
  route.paths.push_back(p);
  std::vector<double> latencies;
  NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t, NodeId, double l) { latencies.push_back(l); };
  net.set_hooks(std::move(hooks));
  net.inject(worm::make_worm_specs(mesh, route, 1));
  net.inject(worm::make_worm_specs(mesh, route, 1));
  sched.run();
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_DOUBLE_EQ(latencies[0], 2 + 8 - 1);  // 9
  // Second worm: channel [0,1] frees at t = 1 + 8 = 9; header then crosses
  // hop 1 at 10, hop 2 at 11; delivery at progress 2 + L - 1 = 9 -> 7 more
  // flit times of drain: 11 + 7 = 18.
  EXPECT_DOUBLE_EQ(latencies[1], 18.0);
}

TEST(Network, BlockingTimeDecompositionIsExact) {
  // Same scenario as ContendedChannelSerialisesWorms: worm B waits on
  // channel [0,1] from t = 0 to t = 9 while A's tail drains -- exactly 9
  // flit times of blocking; A never blocks.
  const Mesh2D mesh(3, 1);
  evsim::Scheduler sched;
  const WormholeParams params{.flit_time = 1.0, .message_flits = 8, .channel_copies = 1};
  Network net(mesh, params, sched);
  mcast::MulticastRoute route;
  route.source = 0;
  mcast::PathRoute p;
  p.nodes = {0, 1, 2};
  p.delivery_hops = {2};
  route.paths.push_back(p);
  net.inject(worm::make_worm_specs(mesh, route, 1));
  net.inject(worm::make_worm_specs(mesh, route, 1));
  sched.run();
  EXPECT_DOUBLE_EQ(net.total_blocked_time(), 9.0);
}

TEST(Network, DoubleChannelsRemoveTheSerialisation) {
  const Mesh2D mesh(3, 1);
  evsim::Scheduler sched;
  const WormholeParams params{.flit_time = 1.0, .message_flits = 8, .channel_copies = 2};
  Network net(mesh, params, sched);
  std::vector<double> latencies;
  NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t, NodeId, double l) { latencies.push_back(l); };
  net.set_hooks(std::move(hooks));
  mcast::MulticastRoute route;
  route.source = 0;
  mcast::PathRoute p;
  p.nodes = {0, 1, 2};
  p.delivery_hops = {2};
  route.paths.push_back(p);
  net.inject(worm::make_worm_specs(mesh, route, 2));
  net.inject(worm::make_worm_specs(mesh, route, 2));
  sched.run();
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_DOUBLE_EQ(latencies[0], 9.0);
  EXPECT_DOUBLE_EQ(latencies[1], 9.0);  // second worm rides copy 1
}

TEST(Network, TreeWormLockStepTiming) {
  // A 2-branch tree: depths 1..2 on one branch, 1 on the other; all
  // branches advance together, deliveries at depth + L - 1 flit times.
  const Mesh2D mesh(3, 3);
  evsim::Scheduler sched;
  const WormholeParams params{.flit_time = 1.0, .message_flits = 4, .channel_copies = 1};
  Network net(mesh, params, sched);
  Capture cap;
  net.set_hooks(cap.hooks());
  mcast::MulticastRoute route;
  route.source = mesh.node(1, 1);
  mcast::TreeRoute t;
  t.source = route.source;
  const auto l0 = t.add_link(mesh.node(1, 1), mesh.node(2, 1), -1);
  const auto l1 = t.add_link(mesh.node(2, 1), mesh.node(2, 2), static_cast<std::int32_t>(l0));
  const auto l2 = t.add_link(mesh.node(1, 1), mesh.node(0, 1), -1);
  t.delivery_links = {l1, l2};
  route.trees.push_back(t);
  net.inject(worm::make_worm_specs(mesh, route, 1));
  sched.run();
  EXPECT_DOUBLE_EQ(cap.deliveries[mesh.node(0, 1)], 1 + 4 - 1);
  EXPECT_DOUBLE_EQ(cap.deliveries[mesh.node(2, 2)], 2 + 4 - 1);
  EXPECT_TRUE(net.idle());
}

// --- Deadlock (Fig. 6.1) ----------------------------------------------------

TEST(Network, BinomialBroadcastsDeadlockOnThreeCube) {
  // Two simultaneous nCUBE-2 broadcasts from 000 and 001 acquire each
  // other's required channels and block forever (Section 6.1, Fig. 6.1/6.2).
  const Hypercube cube(3);
  evsim::Scheduler sched;
  const WormholeParams params{.flit_time = 1.0, .message_flits = 8, .channel_copies = 1};
  Network net(cube, params, sched);

  MulticastRequest req0{0b000, {}};
  MulticastRequest req1{0b001, {}};
  for (NodeId d = 0; d < 8; ++d) {
    if (d != 0b000) req0.destinations.push_back(d);
    if (d != 0b001) req1.destinations.push_back(d);
  }
  net.inject(worm::make_worm_specs(cube, binomial_broadcast_route(cube, req0), 1));
  net.inject(worm::make_worm_specs(cube, binomial_broadcast_route(cube, req1), 1));
  sched.run();

  EXPECT_FALSE(net.idle()) << "the two broadcasts must block forever";
  const worm::DeadlockReport report = worm::check_deadlock(net);
  EXPECT_TRUE(report.deadlocked());
  EXPECT_GE(report.cycle.size(), 2u);
  EXPECT_FALSE(report.description.empty());
}

TEST(Network, DualPathWormsNeverDeadlockUnderStress) {
  // Property: saturating an 8x8 mesh with dual-path multicasts always
  // drains (Assertion 2 mechanised).
  const Mesh2D mesh(8, 8);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Scheduler sched;
  const WormholeParams params{.flit_time = 1.0, .message_flits = 16, .channel_copies = 1};
  Network net(mesh, params, sched);
  evsim::Rng rng(77);
  for (int burst = 0; burst < 200; ++burst) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 15);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    net.inject(worm::make_worm_specs(mesh, dual_path_route(mesh, lab, req), 1));
  }
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.pool().busy_count(), 0u);
  EXPECT_EQ(net.messages_completed(), 200u);
  EXPECT_TRUE(net.find_deadlock().empty());
}

TEST(Network, SelfConflictingTreeIsRejected) {
  // A tree that would need the same physical channel twice must be refused
  // at spec-construction time.
  const Mesh2D mesh(4, 1);
  mcast::MulticastRoute route;
  route.source = 0;
  mcast::TreeRoute t;
  t.source = 0;
  const auto a = t.add_link(0, 1, -1);
  const auto b = t.add_link(1, 0, static_cast<std::int32_t>(a));  // bounce back
  const auto c = t.add_link(0, 1, static_cast<std::int32_t>(b));  // reuse 0->1
  t.delivery_links = {c};
  route.trees.push_back(t);
  EXPECT_THROW((void)worm::make_worm_specs(mesh, route, 1), std::logic_error);
}

}  // namespace
