// Property test: group multicast under seeded churn.  Across seeds and
// topologies, every send resolves to exactly one report with a terminal
// outcome per destination, no application delivery ever lands on a node
// that is not a member at delivery time, view ids advance by one with a
// nondecreasing fault epoch, and sender windows always drain (the stall
// gauge returns to zero once the final views install).
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "evsim/scheduler.hpp"
#include "fault/fault_router.hpp"
#include "service/churn.hpp"
#include "service/group_service.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;

struct ChurnRun {
  std::uint64_t sends = 0;
  std::uint64_t reports = 0;
  std::uint64_t app_deliveries = 0;
  svc::GroupService::Stats stats;
  std::vector<std::tuple<svc::ViewId, std::size_t, std::uint64_t>> history;
};

ChurnRun run_churn(const topo::Topology& topology, std::uint64_t seed) {
  auto faults = std::make_shared<fault::FaultState>(topology);
  auto router =
      fault::make_fault_aware_router(topology, mcast::Algorithm::kDualPath, faults);
  evsim::Scheduler sched;
  svc::MulticastService service(*router, worm::WormholeParams{}, sched);
  svc::GroupConfig cfg;
  cfg.window_size = 4;
  svc::GroupService groups(service, cfg);

  const auto n = static_cast<topo::NodeId>(topology.num_nodes());
  std::vector<topo::NodeId> init;
  for (topo::NodeId i = 0; i < n / 2; ++i) init.push_back(i);
  std::vector<topo::NodeId> cand;
  for (topo::NodeId i = 0; i < n; ++i) cand.push_back(i);
  const auto gid = groups.create_group(init);

  svc::ChurnConfig cc;
  cc.t_begin_s = 100e-6;
  cc.t_end_s = 2.5e-3;
  cc.events_per_s = 4e3;
  cc.seed = seed;
  const auto schedule = svc::ChurnSchedule::random(init, cand, cc);
  schedule_churn(groups, gid, sched, schedule);

  ChurnRun out;

  // Every application delivery must land on a current member, in
  // per-(receiver, sender) sequence order.
  std::map<std::pair<topo::NodeId, topo::NodeId>, svc::SeqNum> stream_floor;
  groups.on_app_delivery([&](svc::GroupId g, topo::NodeId recv, topo::NodeId snd,
                             svc::SeqNum seq, svc::ViewId) {
    ++out.app_deliveries;
    EXPECT_TRUE(groups.view(g).contains(recv))
        << "delivery to evicted node " << recv << " (seed " << seed << ")";
    auto& floor = stream_floor[{recv, snd}];
    EXPECT_GE(seq, floor) << "stream went backwards at node " << recv;
    floor = seq + 1;
  });

  // Steady sends from a rotating live member while churn runs.
  evsim::Rng rng(evsim::derive_seed(seed, 0x73656e64ULL));  // "send"
  std::function<void(double)> pump = [&](double t) {
    if (t >= cc.t_end_s) return;
    sched.schedule_at(t, [&groups, gid, &out, &rng, &pump, t, seed] {
      const auto& members = groups.view(gid).members;
      if (!members.empty()) {
        const topo::NodeId sender =
            members[rng.uniform_int(0, static_cast<std::uint32_t>(members.size()) - 1)];
        const svc::ViewId sent_view = groups.view(gid).id;
        ++out.sends;
        groups.send(gid, sender, [&out, sent_view, seed](const svc::GroupSendReport& r) {
          ++out.reports;
          // A queued send launches under the then-current view, which is
          // never older than the view at send() time.
          EXPECT_GE(r.view, sent_view) << "seed " << seed;
          for (const auto& d : r.destinations) {
            // Terminal outcome for every destination: delivered while a
            // member, or explicitly evicted / dropped / unreachable.
            const bool terminal = d.outcome == svc::GroupOutcome::kDeliveredInView ||
                                  d.outcome == svc::GroupOutcome::kEvicted ||
                                  d.outcome == svc::GroupOutcome::kDropped ||
                                  d.outcome == svc::GroupOutcome::kUnreachable;
            EXPECT_TRUE(terminal);
            if (d.outcome == svc::GroupOutcome::kDeliveredInView) {
              EXPECT_GT(d.latency_s, 0.0);
            }
          }
        });
      }
      pump(t + 25e-6);
    });
  };
  pump(120e-6);

  sched.schedule_at(cc.t_end_s + 5e-3, [&] { groups.stop(); });
  sched.run();  // must terminate: no group send may hang

  // Windows fully drained: nothing in flight, nothing queued, no sender
  // left stalled after the final view installs.
  for (const topo::NodeId m : cand) {
    EXPECT_EQ(groups.in_flight(gid, m), 0u);
    EXPECT_EQ(groups.queued(gid, m), 0u);
  }
  EXPECT_EQ(groups.stalled_senders(), 0u);

  out.stats = groups.stats();
  for (const auto& v : groups.view_history(gid)) {
    out.history.emplace_back(v.id, v.members.size(), v.fault_epoch);
  }
  return out;
}

void check_run(const ChurnRun& r, std::uint64_t seed) {
  // Exactly one report per send -- sends never vanish and never double-
  // report, whatever the churn did.
  EXPECT_EQ(r.reports, r.sends) << "seed " << seed;
  EXPECT_GT(r.sends, 0u);
  EXPECT_GT(r.app_deliveries, 0u);
  EXPECT_EQ(r.stats.sends, r.sends);

  // Views advance by exactly one with a nondecreasing fault epoch.
  ASSERT_FALSE(r.history.empty());
  EXPECT_EQ(std::get<0>(r.history.front()), 1u);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_EQ(std::get<0>(r.history[i]), std::get<0>(r.history[i - 1]) + 1);
    EXPECT_GE(std::get<2>(r.history[i]), std::get<2>(r.history[i - 1]));
  }

  // Terminal outcomes account for every owed destination.
  const auto& s = r.stats;
  EXPECT_GT(s.delivered_in_view, 0u);
  EXPECT_GE(s.view_installs, 1u);
}

TEST(GroupChurn, PropertyHoldsAcrossSeedsOnMesh) {
  const topo::Mesh2D mesh(4, 4);
  for (const std::uint64_t seed : {7u, 21u, 1234u}) {
    check_run(run_churn(mesh, seed), seed);
  }
}

TEST(GroupChurn, PropertyHoldsAcrossSeedsOnHypercube) {
  const topo::Hypercube cube(4);
  for (const std::uint64_t seed : {3u, 77u, 4096u}) {
    check_run(run_churn(cube, seed), seed);
  }
}

TEST(GroupChurn, RunsReplayDeterministically) {
  const topo::Mesh2D mesh(4, 4);
  const ChurnRun a = run_churn(mesh, 99);
  const ChurnRun b = run_churn(mesh, 99);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.sends, b.sends);
  EXPECT_EQ(a.app_deliveries, b.app_deliveries);
  EXPECT_EQ(a.stats.delivered_in_view, b.stats.delivered_in_view);
  EXPECT_EQ(a.stats.evictions, b.stats.evictions);
}

TEST(GroupChurn, ScheduleGeneratorKeepsGroupFeasible) {
  const svc::ChurnConfig base;
  svc::ChurnConfig cc = base;
  cc.t_end_s = 10e-3;
  cc.events_per_s = 2e3;
  cc.seed = 5;
  std::vector<topo::NodeId> init = {0, 1, 2, 3};
  std::vector<topo::NodeId> cand = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto s = svc::ChurnSchedule::random(init, cand, cc);
  EXPECT_FALSE(s.events.empty());

  // Replay the generator's bookkeeping: events must stay feasible and the
  // member set non-empty throughout.
  std::set<topo::NodeId> members(init.begin(), init.end());
  std::set<topo::NodeId> crashed;
  double last_t = cc.t_begin_s;
  for (const auto& e : s.events) {
    EXPECT_GE(e.time_s, last_t);
    EXPECT_LT(e.time_s, cc.t_end_s);
    last_t = e.time_s;
    switch (e.kind) {
      case svc::ChurnEvent::Kind::kJoin:
        EXPECT_EQ(members.count(e.node), 0u);
        members.insert(e.node);
        break;
      case svc::ChurnEvent::Kind::kLeave:
        EXPECT_EQ(members.count(e.node), 1u);
        EXPECT_GT(members.size(), 1u);
        members.erase(e.node);
        break;
      case svc::ChurnEvent::Kind::kCrash:
        EXPECT_EQ(crashed.count(e.node), 0u);
        EXPECT_GT(members.size(), 1u);
        crashed.insert(e.node);
        members.erase(e.node);
        break;
      case svc::ChurnEvent::Kind::kRecover:
        EXPECT_EQ(crashed.count(e.node), 1u);
        crashed.erase(e.node);
        break;
    }
    EXPECT_FALSE(members.empty());
  }

  // Same seed, same schedule; different seed, different schedule.
  const auto again = svc::ChurnSchedule::random(init, cand, cc);
  ASSERT_EQ(again.events.size(), s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(again.events[i].time_s, s.events[i].time_s);
    EXPECT_EQ(again.events[i].kind, s.events[i].kind);
    EXPECT_EQ(again.events[i].node, s.events[i].node);
  }
  svc::ChurnConfig cc2 = cc;
  cc2.seed = 6;
  const auto other = svc::ChurnSchedule::random(init, cand, cc2);
  EXPECT_NE(other.events.size(), 0u);

  svc::ChurnConfig bad = base;
  bad.events_per_s = 0.0;
  EXPECT_THROW(svc::ChurnSchedule::random(init, cand, bad), std::invalid_argument);
  bad = base;
  bad.t_end_s = bad.t_begin_s - 1.0;
  EXPECT_THROW(svc::ChurnSchedule::random(init, cand, bad), std::invalid_argument);
  bad = base;
  bad.join_weight = bad.leave_weight = bad.crash_weight = bad.recover_weight = 0.0;
  EXPECT_THROW(svc::ChurnSchedule::random(init, cand, bad), std::invalid_argument);
  EXPECT_THROW(svc::ChurnSchedule::random({}, cand, base), std::invalid_argument);
}

}  // namespace
