#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "evsim/facility.hpp"
#include "evsim/process.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "evsim/stats.hpp"

namespace {

using namespace mcnet::evsim;

TEST(Scheduler, DispatchesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, TiesBreakInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, HandlersCanScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) s.schedule_in(1.0, chain);
  };
  s.schedule_in(1.0, chain);
  s.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Scheduler, RunUntilStopsAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(2.5), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler s;
  s.schedule_at(2.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Process, DelaySuspendsAndResumes) {
  Scheduler s;
  std::vector<double> times;
  const auto proc = [](Scheduler& sched, std::vector<double>& t) -> Process {
    t.push_back(sched.now());
    co_await delay(sched, 1.5);
    t.push_back(sched.now());
    co_await delay(sched, 2.5);
    t.push_back(sched.now());
  };
  proc(s, times);
  s.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_DOUBLE_EQ(times[2], 4.0);
}

TEST(Facility, SerialisesUsersFcfs) {
  Scheduler s;
  Facility fac(s, 1);
  std::vector<std::pair<int, double>> service_start;
  const auto user = [](Scheduler& sched, Facility& f, int id, double arrive,
                       std::vector<std::pair<int, double>>& log) -> Process {
    co_await delay(sched, arrive);
    co_await f.acquire();
    log.emplace_back(id, sched.now());
    co_await delay(sched, 10.0);  // service time
    f.release();
  };
  user(s, fac, 0, 0.0, service_start);
  user(s, fac, 1, 1.0, service_start);
  user(s, fac, 2, 2.0, service_start);
  s.run();
  ASSERT_EQ(service_start.size(), 3u);
  EXPECT_EQ(service_start[0].first, 0);
  EXPECT_DOUBLE_EQ(service_start[0].second, 0.0);
  EXPECT_EQ(service_start[1].first, 1);
  EXPECT_DOUBLE_EQ(service_start[1].second, 10.0);
  EXPECT_EQ(service_start[2].first, 2);
  EXPECT_DOUBLE_EQ(service_start[2].second, 20.0);
}

TEST(Facility, MultipleServersRunConcurrently) {
  Scheduler s;
  Facility fac(s, 2);
  std::vector<double> done;
  const auto user = [](Scheduler& sched, Facility& f, std::vector<double>& log) -> Process {
    co_await f.acquire();
    co_await delay(sched, 5.0);
    f.release();
    log.push_back(sched.now());
  };
  for (int i = 0; i < 4; ++i) user(s, fac, done);
  s.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0], 5.0);
  EXPECT_DOUBLE_EQ(done[1], 5.0);
  EXPECT_DOUBLE_EQ(done[2], 10.0);
  EXPECT_DOUBLE_EQ(done[3], 10.0);
}

TEST(Facility, OverReleaseThrows) {
  Scheduler s;
  Facility fac(s, 1);
  EXPECT_THROW(fac.release(), std::logic_error);
}

TEST(Mailbox, DeliversInOrderAndBlocksReceivers) {
  Scheduler s;
  Mailbox<int> box(s);
  std::vector<int> got;
  const auto receiver = [](Mailbox<int>& mb, std::vector<int>& out) -> Process {
    for (int i = 0; i < 3; ++i) {
      out.push_back(co_await mb.receive());
    }
  };
  receiver(box, got);
  EXPECT_EQ(box.waiting_receivers(), 1u);
  const auto sender = [](Scheduler& sched, Mailbox<int>& mb) -> Process {
    co_await delay(sched, 1.0);
    mb.send(10);
    mb.send(20);
    co_await delay(sched, 1.0);
    mb.send(30);
  };
  sender(s, box);
  s.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Stats, SummaryWelford) {
  Summary sum;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) sum.add(x);
  EXPECT_EQ(sum.count(), 8u);
  EXPECT_DOUBLE_EQ(sum.mean(), 5.0);
  EXPECT_NEAR(sum.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(sum.min(), 2.0);
  EXPECT_DOUBLE_EQ(sum.max(), 9.0);
}

TEST(Stats, StudentTQuantiles) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_975(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t_975(1000), 1.96, 1e-3);
  EXPECT_TRUE(std::isinf(student_t_975(0)));
}

TEST(Stats, BatchMeansDiscardsWarmupAndConverges) {
  BatchMeans bm(10, /*discard=*/1);
  // Warm-up batch of large values, then steady batches around 5.
  for (int i = 0; i < 10; ++i) bm.add(100.0);
  for (int i = 0; i < 200; ++i) bm.add(5.0 + ((i % 2 == 0) ? 0.01 : -0.01));
  EXPECT_EQ(bm.completed_batches(), 21u);
  EXPECT_EQ(bm.effective_batches(), 20u);
  EXPECT_NEAR(bm.mean(), 5.0, 1e-9);  // warm-up batch excluded
  EXPECT_TRUE(bm.converged(0.05, 10));
}

TEST(Stats, BatchMeansNotConvergedWhenNoisy) {
  BatchMeans bm(5, 0);
  for (int i = 0; i < 30; ++i) bm.add(i % 2 == 0 ? 1.0 : 100.0);
  EXPECT_FALSE(bm.converged(0.05, 3));
}

TEST(Random, SeedDerivationDecorrelates) {
  const std::uint64_t a = derive_seed(1, 0);
  const std::uint64_t b = derive_seed(1, 1);
  const std::uint64_t c = derive_seed(2, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(Random, SampleDestinationsDistinctAndExcludesSource) {
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const auto dests = rng.sample_destinations(64, 10, 20);
    EXPECT_EQ(dests.size(), 20u);
    std::set<mcnet::topo::NodeId> set(dests.begin(), dests.end());
    EXPECT_EQ(set.size(), 20u) << "duplicates";
    EXPECT_FALSE(set.contains(10u)) << "source sampled";
    for (const auto d : set) EXPECT_LT(d, 64u);
  }
}

TEST(Random, SampleDestinationsFullNetwork) {
  Rng rng(7);
  const auto dests = rng.sample_destinations(16, 3, 15);
  std::set<mcnet::topo::NodeId> set(dests.begin(), dests.end());
  EXPECT_EQ(set.size(), 15u);
  EXPECT_FALSE(set.contains(3u));
  EXPECT_THROW((void)rng.sample_destinations(16, 3, 16), std::invalid_argument);
}

TEST(Summary, HandlesEdgeCases) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // no samples: defined as zero
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // single sample: zero, not NaN
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(-5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 50.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(BatchMeans, DiscardAtLeastCompletedLeavesNoEffectiveBatches) {
  BatchMeans bm(10, /*discard=*/3);
  for (int i = 0; i < 30; ++i) bm.add(1.0);  // exactly 3 completed batches
  EXPECT_EQ(bm.completed_batches(), 3u);
  EXPECT_EQ(bm.effective_batches(), 0u);
  EXPECT_DOUBLE_EQ(bm.mean(), 0.0);
  EXPECT_TRUE(std::isinf(bm.half_width()));
  EXPECT_FALSE(bm.converged());
}

TEST(BatchMeans, SingleEffectiveBatchHasInfiniteHalfWidth) {
  BatchMeans bm(5, /*discard=*/1);
  for (int i = 0; i < 10; ++i) bm.add(2.0);  // 2 completed, 1 effective
  EXPECT_EQ(bm.effective_batches(), 1u);
  EXPECT_DOUBLE_EQ(bm.mean(), 2.0);
  // One batch mean gives no variance estimate: the half-width must be
  // infinite (unknown), never zero (claiming perfect precision).
  EXPECT_TRUE(std::isinf(bm.half_width()));
  EXPECT_FALSE(bm.converged(0.05, 1));
}

TEST(BatchMeans, ZeroMeanNeverConverges) {
  BatchMeans bm(2, /*discard=*/0);
  for (int i = 0; i < 100; ++i) bm.add(0.0);
  EXPECT_EQ(bm.effective_batches(), 50u);
  EXPECT_DOUBLE_EQ(bm.mean(), 0.0);
  EXPECT_DOUBLE_EQ(bm.half_width(), 0.0);
  // The relative-width rule is undefined at mean zero; converged() must
  // answer false rather than divide by zero.
  EXPECT_FALSE(bm.converged());
}

TEST(BatchMeans, ConvergesOnSteadyData) {
  BatchMeans bm(10, /*discard=*/1);
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) bm.add(100.0 + rng.uniform(-1.0, 1.0));
  EXPECT_GE(bm.effective_batches(), 10u);
  EXPECT_NEAR(bm.mean(), 100.0, 0.5);
  EXPECT_TRUE(bm.converged(0.05, 10));
  EXPECT_LT(bm.half_width(), 1.0);
}

TEST(BatchMeans, PartialBatchDoesNotCount) {
  BatchMeans bm(10, /*discard=*/0);
  for (int i = 0; i < 9; ++i) bm.add(1.0);
  EXPECT_EQ(bm.samples(), 9u);
  EXPECT_EQ(bm.completed_batches(), 0u);
  bm.add(1.0);
  EXPECT_EQ(bm.completed_batches(), 1u);
  EXPECT_THROW(BatchMeans(0, 0), std::invalid_argument);
}

TEST(Random, SampleDestinationsIsRoughlyUniform) {
  Rng rng(123);
  std::vector<int> counts(16, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    for (const auto d : rng.sample_destinations(16, 0, 3)) ++counts[d];
  }
  // Each of the 15 candidates should appear ~ trials * 3 / 15 = 4000 times.
  EXPECT_EQ(counts[0], 0);
  for (int d = 1; d < 16; ++d) {
    EXPECT_NEAR(counts[d], 4000, 400) << "node " << d;
  }
}

}  // namespace
