// Exact optimum solvers (Chapter 3 models) and their use as heuristic
// calibration baselines.
#include <gtest/gtest.h>

#include "core/exact.hpp"
#include "core/route_factory.hpp"
#include "evsim/random.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;

TEST(AllPairs, MatchesClosedFormDistances) {
  const Mesh2D mesh(5, 4);
  const auto d = mcast::exact::all_pairs_distances(mesh);
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
      EXPECT_EQ(d[u][v], mesh.distance(u, v));
    }
  }
  const Hypercube cube(4);
  const auto dc = mcast::exact::all_pairs_distances(cube);
  for (NodeId u = 0; u < cube.num_nodes(); ++u) {
    for (NodeId v = 0; v < cube.num_nodes(); ++v) {
      EXPECT_EQ(dc[u][v], cube.distance(u, v));
    }
  }
}

TEST(SteinerOptimum, HandComputedCases) {
  const Mesh2D mesh(4, 4);
  // Single destination: the shortest path.
  EXPECT_EQ(mcast::exact::steiner_tree_optimum(mesh, {0, {15}}), 6u);
  // Corners 3 and 12 from source 0: an L covering both costs 3+3... the
  // optimal tree is 0->3 plus 0->12: 6 edges (no sharing possible beyond 0).
  EXPECT_EQ(mcast::exact::steiner_tree_optimum(mesh, {0, {3, 12}}), 6u);
  // Destinations 1 and 5 from 0: tree 0-1, 1-5: 2 edges.
  EXPECT_EQ(mcast::exact::steiner_tree_optimum(mesh, {0, {1, 5}}), 2u);
  // The classic Steiner gain: corners {3, 12, 15} from 0 need 12 edges as
  // disjoint paths but only... spanning all four corners of a 4x4 mesh
  // costs 3 + 3 + (3 + 3) = 12? optimal rectilinear Steiner tree over the
  // 4 corners has length 9 (an H shape): verify the solver finds <= 9 + ...
  EXPECT_EQ(mcast::exact::steiner_tree_optimum(mesh, {0, {3, 12, 15}}), 9u);
}

TEST(SteinerOptimum, NeverAboveGreedyHeuristic) {
  const Mesh2D mesh(6, 6);
  const mcast::MeshRoutingSuite suite(mesh);
  evsim::Rng rng(101);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 7);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const std::uint64_t opt = mcast::exact::steiner_tree_optimum(mesh, req);
    const std::uint64_t greedy =
        suite.route(mcast::Algorithm::kGreedyST, req).traffic();
    EXPECT_LE(opt, greedy);
    // Sanity: the optimum is at least the farthest destination distance.
    std::uint32_t far = 0;
    for (const NodeId d : req.destinations) far = std::max(far, mesh.distance(src, d));
    EXPECT_GE(opt, far);
  }
}

TEST(SteinerOptimum, MatchesBruteForceOnTinyCube) {
  // Cross-check Dreyfus-Wagner against an independent exhaustive bound on a
  // 3-cube: enumerate all edge subsets is too big, so instead check
  // against the Held-Karp walk bound (tree <= walk) and the trivial
  // distance lower bound for all destination pairs.
  const Hypercube cube(3);
  for (NodeId a = 1; a < 8; ++a) {
    for (NodeId b = 1; b < 8; ++b) {
      if (a == b || a == 0 || b == 0) continue;
      const MulticastRequest req{0, {a, b}};
      const std::uint64_t st = mcast::exact::steiner_tree_optimum(cube, req);
      const std::uint64_t walk = mcast::exact::multicast_path_optimum_bound(cube, req);
      EXPECT_LE(st, walk);
      EXPECT_GE(st, std::max(cube.distance(0, a), cube.distance(0, b)));
      // For two terminals the Steiner tree is the cheaper of a Y-join or
      // chain; it is never below half the walk.
      EXPECT_GE(2 * st, walk);
    }
  }
}

TEST(PathOptimum, HandComputedCases) {
  const Mesh2D mesh(4, 4);
  // Visit 3 then 15 (or 15 then 3): best order 3 -> 15 = 3 + 3 = 6.
  EXPECT_EQ(mcast::exact::multicast_path_optimum_bound(mesh, {0, {3, 15}}), 6u);
  // Cycle adds the way back from the last stop.
  EXPECT_EQ(mcast::exact::multicast_cycle_optimum_bound(mesh, {0, {3, 15}}), 12u);
  // Star may split: destinations 3 and 12 served by two separate walks
  // costs 3 + 3 = 6; a single walk costs 3 + 6 = 9.
  EXPECT_EQ(mcast::exact::multicast_star_optimum_bound(mesh, {0, {3, 12}}), 6u);
  EXPECT_EQ(mcast::exact::multicast_path_optimum_bound(mesh, {0, {3, 12}}), 9u);
}

TEST(PathOptimum, LowerBoundsSortedMp) {
  const Mesh2D mesh(8, 8);
  const mcast::MeshRoutingSuite suite(mesh);
  evsim::Rng rng(103);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 9);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const std::uint64_t bound = mcast::exact::multicast_path_optimum_bound(mesh, req);
    EXPECT_LE(bound, suite.route(mcast::Algorithm::kSortedMP, req).traffic());
    EXPECT_LE(mcast::exact::multicast_cycle_optimum_bound(mesh, req),
              suite.route(mcast::Algorithm::kSortedMC, req).traffic());
  }
}

TEST(StarOptimum, LowerBoundsDualAndMultiPath) {
  const Mesh2D mesh(8, 8);
  const mcast::MeshRoutingSuite suite(mesh);
  evsim::Rng rng(107);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 8);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const std::uint64_t bound = mcast::exact::multicast_star_optimum_bound(mesh, req);
    EXPECT_LE(bound, suite.route(mcast::Algorithm::kDualPath, req).traffic());
    EXPECT_LE(bound, suite.route(mcast::Algorithm::kMultiPath, req).traffic());
    EXPECT_LE(bound, suite.route(mcast::Algorithm::kFixedPath, req).traffic());
    // And the model hierarchy of Chapter 3: star <= path, tree <= star.
    EXPECT_LE(bound, mcast::exact::multicast_path_optimum_bound(mesh, req));
    EXPECT_LE(mcast::exact::steiner_tree_optimum(mesh, req), bound);
  }
}

TEST(ExactSolvers, RejectOversizedInstances) {
  const Mesh2D mesh(8, 8);
  MulticastRequest big{0, {}};
  for (NodeId d = 1; d <= 20; ++d) big.destinations.push_back(d);
  EXPECT_THROW((void)mcast::exact::steiner_tree_optimum(mesh, big), std::invalid_argument);
  EXPECT_THROW((void)mcast::exact::multicast_path_optimum_bound(mesh, big),
               std::invalid_argument);
  EXPECT_THROW((void)mcast::exact::multicast_star_optimum_bound(mesh, big),
               std::invalid_argument);
}

}  // namespace
