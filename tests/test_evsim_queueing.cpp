// Queueing-theory validation of the CSIM-substitute substrate: an M/D/1
// facility simulated with coroutine processes must match the
// Pollaczek-Khinchine mean waiting time  W_q = rho * s / (2 (1 - rho)).
#include <gtest/gtest.h>

#include "evsim/facility.hpp"
#include "evsim/process.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "evsim/stats.hpp"

namespace {

using namespace mcnet::evsim;

struct MD1Result {
  double mean_wait = 0.0;
  std::uint64_t served = 0;
};

MD1Result run_md1(double arrival_rate, double service_time, std::uint64_t customers,
                  std::uint64_t seed) {
  Scheduler sched;
  Facility server(sched, 1);
  Summary waits;

  // One generator process spawns customer processes with exponential
  // interarrival times -- the CSIM programming model end to end.
  struct Env {
    Scheduler& sched;
    Facility& server;
    Summary& waits;
    double service_time;
  } env{sched, server, waits, service_time};

  static const auto customer = [](Env& e) -> Process {
    const double arrived = e.sched.now();
    co_await e.server.acquire();
    e.waits.add(e.sched.now() - arrived);
    co_await delay(e.sched, e.service_time);
    e.server.release();
  };
  const auto generator = [](Env& e, Rng& rng, double rate, std::uint64_t n) -> Process {
    for (std::uint64_t i = 0; i < n; ++i) {
      co_await delay(e.sched, rng.exponential(1.0 / rate));
      customer(e);
    }
  };

  Rng rng(seed);
  generator(env, rng, arrival_rate, customers);
  sched.run();
  return {waits.mean(), waits.count()};
}

TEST(EvsimQueueing, MD1MatchesPollaczekKhinchine) {
  const double s = 1.0;  // deterministic service time
  for (const double rho : {0.3, 0.5, 0.7}) {
    const MD1Result r = run_md1(rho / s, s, 60000, 1234);
    ASSERT_EQ(r.served, 60000u);
    const double expected = rho * s / (2.0 * (1.0 - rho));
    EXPECT_NEAR(r.mean_wait, expected, expected * 0.08 + 0.01) << "rho=" << rho;
  }
}

TEST(EvsimQueueing, EmptySystemHasZeroWait) {
  const MD1Result r = run_md1(0.01, 1.0, 500, 7);
  EXPECT_LT(r.mean_wait, 0.02);
}

TEST(EvsimQueueing, DeterministicAcrossSeedsOnlyThroughRng) {
  const MD1Result a = run_md1(0.5, 1.0, 5000, 99);
  const MD1Result b = run_md1(0.5, 1.0, 5000, 99);
  EXPECT_DOUBLE_EQ(a.mean_wait, b.mean_wait);
}

}  // namespace
