// Virtual cut-through mode (Section 2.2.2): blocked messages buffer at the
// blocking node and release their channels, unlike wormhole worms that
// stall in place.
#include <gtest/gtest.h>

#include <map>

#include "core/dual_path.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/network.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using topo::Mesh2D;
using topo::NodeId;

mcast::MulticastRoute line_path(const std::vector<NodeId>& nodes) {
  mcast::MulticastRoute route;
  route.source = nodes.front();
  mcast::PathRoute p;
  p.nodes = nodes;
  p.delivery_hops = {static_cast<std::uint32_t>(nodes.size() - 1)};
  route.paths.push_back(p);
  return route;
}

// The hand-computed scenario: A(1->2->3) occupies [1,2] until t=9; B
// (0->1->2) blocks on [1,2] at t=1.5; C (0->1) wants [0,1] at t=2.
struct ScenarioResult {
  std::map<NodeId, std::vector<double>> delivery_times;  // per destination
};

ScenarioResult run_scenario(bool vct) {
  const Mesh2D mesh(4, 1);
  evsim::Scheduler sched;
  worm::Network net(mesh,
                    {.flit_time = 1.0,
                     .message_flits = 8,
                     .channel_copies = 1,
                     .virtual_cut_through = vct},
                    sched);
  ScenarioResult result;
  worm::NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t, NodeId d, double) {
    result.delivery_times[d].push_back(sched.now());
  };
  net.set_hooks(std::move(hooks));
  net.inject(worm::make_worm_specs(mesh, line_path({1, 2, 3}), 1));
  sched.schedule_at(0.5, [&] { net.inject(worm::make_worm_specs(mesh, line_path({0, 1, 2}), 1)); });
  sched.schedule_at(2.0, [&] { net.inject(worm::make_worm_specs(mesh, line_path({0, 1}), 1)); });
  sched.run();
  EXPECT_TRUE(net.idle());
  return result;
}

TEST(VirtualCutThrough, FreesChannelsForBystanders) {
  const ScenarioResult wormhole = run_scenario(false);
  const ScenarioResult vct = run_scenario(true);

  // The blocked message itself arrives at the same time either way (its
  // flits must wait for channel [1,2] regardless).
  ASSERT_EQ(wormhole.delivery_times.at(2).size(), 1u);
  ASSERT_EQ(vct.delivery_times.at(2).size(), 1u);
  EXPECT_DOUBLE_EQ(wormhole.delivery_times.at(2)[0], vct.delivery_times.at(2)[0]);

  // But the bystander C (0->1) is released much earlier under VCT because
  // B's buffered body no longer holds channel [0,1].
  ASSERT_EQ(wormhole.delivery_times.at(1).size(), 1u);
  ASSERT_EQ(vct.delivery_times.at(1).size(), 1u);
  EXPECT_LT(vct.delivery_times.at(1)[0], wormhole.delivery_times.at(1)[0] - 5.0);
}

TEST(VirtualCutThrough, UncontendedBehavesExactlyLikeWormhole) {
  const Mesh2D mesh(6, 1);
  for (const bool vct : {false, true}) {
    evsim::Scheduler sched;
    worm::Network net(mesh,
                      {.flit_time = 1.0,
                       .message_flits = 4,
                       .channel_copies = 1,
                       .virtual_cut_through = vct},
                      sched);
    double delivery = -1.0;
    worm::NetworkHooks hooks;
    hooks.on_delivery = [&](std::uint64_t, NodeId, double l) { delivery = l; };
    net.set_hooks(std::move(hooks));
    net.inject(worm::make_worm_specs(mesh, line_path({0, 1, 2, 3, 4, 5}), 1));
    sched.run();
    EXPECT_DOUBLE_EQ(delivery, 5 + 4 - 1) << "vct=" << vct;
  }
}

TEST(VirtualCutThrough, RandomStressDrainsAndConservesDeliveries) {
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Scheduler sched;
  worm::Network net(mesh,
                    {.flit_time = 1.0,
                     .message_flits = 10,
                     .channel_copies = 1,
                     .virtual_cut_through = true},
                    sched);
  std::uint64_t deliveries = 0;
  worm::NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t, NodeId, double) { ++deliveries; };
  net.set_hooks(std::move(hooks));
  evsim::Rng rng(811);
  std::uint64_t expected = 0;
  for (int i = 0; i < 120; ++i) {
    sched.schedule_at(rng.uniform(0.0, 200.0), [&net, &mesh, &lab, &rng, &expected] {
      const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
      const std::uint32_t k = rng.uniform_int(1, 8);
      const mcast::MulticastRequest req{src,
                                        rng.sample_destinations(mesh.num_nodes(), src, k)};
      expected += k;
      net.inject(worm::make_worm_specs(mesh, dual_path_route(mesh, lab, req), 1));
    });
  }
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(deliveries, expected);
  EXPECT_EQ(net.messages_completed(), 120u);
  EXPECT_EQ(net.pool().busy_count(), 0u);
}

TEST(VirtualCutThrough, MessageLatenciesNeverWorseThanWormholeUnderLoad) {
  // With unbounded buffers VCT dominates wormhole: same path, same FCFS
  // wait, but upstream channels are freed for others.  Compare mean
  // latency on identical random workloads.
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  double mean[2] = {0.0, 0.0};
  for (const int mode : {0, 1}) {
    evsim::Scheduler sched;
    worm::Network net(mesh,
                      {.flit_time = 1.0,
                       .message_flits = 16,
                       .channel_copies = 1,
                       .virtual_cut_through = mode == 1},
                      sched);
    double total = 0.0;
    std::uint64_t n = 0;
    worm::NetworkHooks hooks;
    hooks.on_delivery = [&](std::uint64_t, NodeId, double l) {
      total += l;
      ++n;
    };
    net.set_hooks(std::move(hooks));
    evsim::Rng rng(821);
    for (int i = 0; i < 200; ++i) {
      sched.schedule_at(rng.uniform(0.0, 150.0), [&net, &mesh, &lab, &rng] {
        const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
        const std::uint32_t k = rng.uniform_int(1, 10);
        const mcast::MulticastRequest req{src,
                                          rng.sample_destinations(mesh.num_nodes(), src, k)};
        net.inject(worm::make_worm_specs(mesh, dual_path_route(mesh, lab, req), 1));
      });
    }
    sched.run();
    mean[mode] = total / static_cast<double>(n);
  }
  EXPECT_LT(mean[1], mean[0] * 1.02) << "VCT should not lose to wormhole";
}

}  // namespace
