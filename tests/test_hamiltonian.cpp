#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "topology/hamiltonian.hpp"

namespace {

using namespace mcnet;
using namespace mcnet::ham;
using mcnet::topo::Hypercube;
using mcnet::topo::Mesh2D;
using mcnet::topo::NodeId;

// --- Labelings -------------------------------------------------------------

void expect_hamiltonian_labeling(const topo::Topology& t, const Labeling& lab) {
  const std::uint32_t n = lab.size();
  ASSERT_EQ(n, t.num_nodes());
  std::set<std::uint32_t> labels;
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t l = lab.label(u);
    ASSERT_LT(l, n);
    EXPECT_TRUE(labels.insert(l).second) << "duplicate label " << l;
    EXPECT_EQ(lab.node_at(l), u) << "node_at is not the inverse of label";
  }
  // Consecutive labels must be adjacent nodes (it is a Hamiltonian path).
  for (std::uint32_t l = 0; l + 1 < n; ++l) {
    EXPECT_TRUE(t.adjacent(lab.node_at(l), lab.node_at(l + 1)))
        << "labels " << l << "," << l + 1 << " not adjacent";
  }
}

TEST(MeshLabeling, IsHamiltonianPathBijection) {
  for (const auto& [w, h] : {std::pair{4u, 3u}, {3u, 4u}, {6u, 6u}, {1u, 5u}, {7u, 1u}}) {
    const Mesh2D mesh(w, h);
    const MeshBoustrophedonLabeling lab(mesh);
    expect_hamiltonian_labeling(mesh, lab);
  }
}

TEST(MeshLabeling, MatchesPaperFormula) {
  // Fig. 6.9(a): l(x, y) = y*n + x (y even) / y*n + n - x - 1 (y odd).
  const Mesh2D mesh(4, 3);
  const MeshBoustrophedonLabeling lab(mesh);
  EXPECT_EQ(lab.label(mesh.node(0, 0)), 0u);
  EXPECT_EQ(lab.label(mesh.node(3, 0)), 3u);
  EXPECT_EQ(lab.label(mesh.node(3, 1)), 4u);
  EXPECT_EQ(lab.label(mesh.node(0, 1)), 7u);
  EXPECT_EQ(lab.label(mesh.node(0, 2)), 8u);
  EXPECT_EQ(lab.label(mesh.node(3, 2)), 11u);
}

TEST(CubeLabeling, IsHamiltonianPathBijection) {
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 6u}) {
    const Hypercube cube(n);
    const HypercubeGrayLabeling lab(cube);
    expect_hamiltonian_labeling(cube, lab);
  }
}

TEST(CubeLabeling, PaperFormulaEqualsGrayDecode) {
  // The paper's sum-form label (Section 6.3) is the inverse binary
  // reflected Gray code.
  for (const std::uint32_t n : {3u, 4u, 5u, 8u}) {
    for (std::uint32_t addr = 0; addr < (1u << n); ++addr) {
      EXPECT_EQ(HypercubeGrayLabeling::paper_label(addr, n),
                HypercubeGrayLabeling::gray_decode(addr))
          << "n=" << n << " addr=" << addr;
    }
  }
}

TEST(CubeLabeling, ThreeCubeExample) {
  // Fig. 6.18(a): labels along the Gray path 000,001,011,010,110,111,101,100.
  const Hypercube cube(3);
  const HypercubeGrayLabeling lab(cube);
  const NodeId expected[8] = {0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100};
  for (std::uint32_t l = 0; l < 8; ++l) EXPECT_EQ(lab.node_at(l), expected[l]);
}

// --- Hamiltonian cycles ----------------------------------------------------

void expect_valid_cycle(const topo::Topology& t, const HamiltonCycle& c) {
  ASSERT_EQ(c.size(), t.num_nodes());
  for (std::uint32_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.position(c.order()[i]), i);
    if (c.size() > 1) {
      EXPECT_TRUE(t.adjacent(c.order()[i], c.order()[(i + 1) % c.size()]));
    }
  }
}

TEST(HamiltonCycle, MeshCombMatchesTable51) {
  // Table 5.1: h-positions 1..16 visit 0,1,2,3,7,6,5,9,10,11,15,14,13,12,8,4.
  const Mesh2D mesh(4, 4);
  const HamiltonCycle c = mesh_comb_cycle(mesh);
  const NodeId expected[16] = {0, 1, 2, 3, 7, 6, 5, 9, 10, 11, 15, 14, 13, 12, 8, 4};
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(c.order()[i], expected[i]) << "position " << i;
  }
  expect_valid_cycle(mesh, c);
}

TEST(HamiltonCycle, MeshCombVariousSizes) {
  for (const auto& [w, h] : {std::pair{4u, 3u}, {3u, 4u}, {2u, 6u}, {6u, 2u}, {8u, 8u},
                            {5u, 4u}, {4u, 5u}, {32u, 32u}}) {
    const Mesh2D mesh(w, h);
    expect_valid_cycle(mesh, mesh_comb_cycle(mesh));
  }
}

TEST(HamiltonCycle, OddOddMeshRejected) {
  const Mesh2D mesh(3, 5);
  EXPECT_THROW(mesh_comb_cycle(mesh), std::invalid_argument);
}

TEST(HamiltonCycle, CubeGrayMatchesTable53) {
  // Table 5.3: positions 1..16 visit 0000,0001,0011,0010,0110,0111,0101,
  // 0100,1100,1101,1111,1110,1010,1011,1001,1000.
  const Hypercube cube(4);
  const HamiltonCycle c = hypercube_gray_cycle(cube);
  const NodeId expected[16] = {0b0000, 0b0001, 0b0011, 0b0010, 0b0110, 0b0111, 0b0101,
                               0b0100, 0b1100, 0b1101, 0b1111, 0b1110, 0b1010, 0b1011,
                               0b1001, 0b1000};
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(c.order()[i], expected[i]) << "position " << i;
  }
  expect_valid_cycle(cube, c);
}

TEST(HamiltonCycle, KeyFromMatchesTable52) {
  // Table 5.2: sorting keys f(x) for the 4x4 mesh with source u0 = 9.
  // The paper's f is 1-based from the cycle start; key_from is 0-based from
  // the source, so f_paper(x) = key_from(9, x) + h_paper(9) = key + 8.
  const Mesh2D mesh(4, 4);
  const HamiltonCycle c = mesh_comb_cycle(mesh);
  const std::uint32_t f_paper[16] = {17, 18, 19, 20, 16, 23, 22, 21,
                                     15, 8,  9,  10, 14, 13, 12, 11};
  for (NodeId x = 0; x < 16; ++x) {
    EXPECT_EQ(c.key_from(9, x) + 8, f_paper[x]) << "node " << x;
  }
}

TEST(HamiltonCycle, KeyFromMatchesTable54) {
  // Table 5.4: keys for the 4-cube with source 0011 (h_paper(0011) = 3).
  const Hypercube cube(4);
  const HamiltonCycle c = hypercube_gray_cycle(cube);
  struct Row {
    NodeId x;
    std::uint32_t f;
  };
  const Row rows[] = {{0b0000, 17}, {0b0001, 18}, {0b0010, 4},  {0b0011, 3},
                      {0b0100, 8},  {0b0101, 7},  {0b0110, 5},  {0b0111, 6},
                      {0b1000, 16}, {0b1001, 15}, {0b1010, 13}, {0b1011, 14},
                      {0b1100, 9},  {0b1101, 10}, {0b1110, 12}, {0b1111, 11}};
  for (const Row& r : rows) {
    if (r.x == 0b0011) continue;  // the source keys as 0 in our convention
    EXPECT_EQ(c.key_from(0b0011, r.x) + 3, r.f) << "node " << r.x;
  }
  EXPECT_EQ(c.key_from(0b0011, 0b0011), 0u);
}

TEST(HamiltonCycle, RejectsBrokenCycles) {
  const Mesh2D mesh(2, 2);
  EXPECT_THROW(HamiltonCycle(mesh, {0, 3, 1, 2}), std::invalid_argument);  // non-adjacent
  EXPECT_THROW(HamiltonCycle(mesh, {0, 1, 3}), std::invalid_argument);     // skips a node
  EXPECT_THROW(HamiltonCycle(mesh, {0, 1, 1, 2}), std::invalid_argument);  // repeats
  EXPECT_NO_THROW(HamiltonCycle(mesh, {0, 1, 3, 2}));
}

TEST(HighLowPartition, EveryChannelInExactlyOneSubnetwork) {
  const Mesh2D mesh(5, 4);
  const MeshBoustrophedonLabeling lab(mesh);
  std::uint32_t high = 0, low = 0;
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    for (const NodeId v : mesh.neighbors(u)) {
      (is_high_channel(lab, u, v) ? high : low) += 1;
    }
  }
  EXPECT_EQ(high + low, mesh.num_channels());
  EXPECT_EQ(high, low);  // each link contributes one channel to each side
}

}  // namespace
