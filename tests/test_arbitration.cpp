// Resource selection policies (Section 2.3.3): FCFS, oldest-first, random.
#include <gtest/gtest.h>

#include "core/dual_path.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/channel_pool.hpp"
#include "wormhole/network.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using worm::Arbitration;
using worm::ChannelPool;
using worm::ChannelRequest;

TEST(Arbitration, FcfsPicksFirstCompatible) {
  ChannelPool pool(1, 1, Arbitration::kFcfs);
  (void)pool.acquire(0, {10, 0, 0});
  (void)pool.acquire(0, {11, 0, 0});
  (void)pool.acquire(0, {12, 0, 0});
  const auto grant = pool.release(0, 0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->first.worm_id, 11u);
}

TEST(Arbitration, OldestFirstUsesPriority) {
  // Priority = creation time; worm 12 is oldest.
  const auto prio = [](std::uint32_t w) { return w == 12 ? 1.0 : 5.0; };
  ChannelPool pool(1, 1, Arbitration::kOldestFirst, prio);
  (void)pool.acquire(0, {10, 0, 0});
  (void)pool.acquire(0, {11, 0, 0});
  (void)pool.acquire(0, {12, 0, 0});
  const auto grant = pool.release(0, 0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->first.worm_id, 12u);
  // Remaining waiter order is preserved for the next release.
  (void)pool.acquire(0, {13, 0, 0});
  EXPECT_EQ(pool.release(0, 0)->first.worm_id, 11u);
}

TEST(Arbitration, OldestFirstRequiresPriorityFunction) {
  EXPECT_THROW(ChannelPool(1, 1, Arbitration::kOldestFirst), std::invalid_argument);
}

TEST(Arbitration, RandomPicksAnyCompatibleDeterministically) {
  // Same seed -> same sequence; all waiters eventually served.
  std::vector<std::uint32_t> order_a, order_b;
  for (auto* order : {&order_a, &order_b}) {
    ChannelPool pool(1, 1, Arbitration::kRandom, {}, 42);
    (void)pool.acquire(0, {1, 0, 0});
    for (std::uint32_t w = 2; w <= 6; ++w) (void)pool.acquire(0, {w, 0, 0});
    for (int i = 0; i < 5; ++i) order->push_back(pool.release(0, 0)->first.worm_id);
  }
  EXPECT_EQ(order_a, order_b);
  std::sort(order_a.begin(), order_a.end());
  EXPECT_EQ(order_a, (std::vector<std::uint32_t>{2, 3, 4, 5, 6}));
}

TEST(Arbitration, SpecificCopyConstraintStillRespected) {
  const auto prio = [](std::uint32_t w) { return static_cast<double>(w); };
  ChannelPool pool(1, 2, Arbitration::kOldestFirst, prio);
  (void)pool.acquire(0, {1, 0, 0});
  (void)pool.acquire(0, {2, 0, 1});
  // Worm 3 (priority 3) wants copy 1, worm 4 (priority 4) wants copy 0.
  (void)pool.acquire(0, {3, 0, 1});
  (void)pool.acquire(0, {4, 0, 0});
  // Freeing copy 0 must grant worm 4 (copy-1 waiter incompatible despite
  // better priority).
  const auto grant = pool.release(0, 0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->first.worm_id, 4u);
}

TEST(Arbitration, AllPoliciesDrainUnderStress) {
  const topo::Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  for (const Arbitration arb :
       {Arbitration::kFcfs, Arbitration::kOldestFirst, Arbitration::kRandom}) {
    evsim::Scheduler sched;
    worm::WormholeParams params{.flit_time = 1.0, .message_flits = 12, .channel_copies = 1};
    params.arbitration = arb;
    worm::Network net(mesh, params, sched);
    evsim::Rng rng(901);
    for (int i = 0; i < 120; ++i) {
      sched.schedule_at(rng.uniform(0.0, 250.0), [&net, &mesh, &lab, &rng] {
        const topo::NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
        const std::uint32_t k = rng.uniform_int(1, 8);
        const mcast::MulticastRequest req{src,
                                          rng.sample_destinations(mesh.num_nodes(), src, k)};
        net.inject(worm::make_worm_specs(mesh, dual_path_route(mesh, lab, req), 1));
      });
    }
    sched.run();
    EXPECT_TRUE(net.idle()) << "arbitration " << static_cast<int>(arb);
    EXPECT_EQ(net.messages_completed(), 120u);
  }
}

}  // namespace
