// Multicast-tree heuristics of Chapter 5: X-first, divided greedy, LEN.
#include <gtest/gtest.h>

#include "core/divided_greedy_mt.hpp"
#include "core/len_tree.hpp"
#include "core/multicast.hpp"
#include "core/xfirst_mt.hpp"
#include "evsim/random.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;

MulticastRequest paper_6x6_request(const Mesh2D& mesh) {
  // Section 5.4: source (3,2), destinations (2,0), (3,0), (4,0), (1,1),
  // (5,1), (0,2), (1,3), (2,5), (3,5), (5,5).
  return MulticastRequest{
      mesh.node(3, 2),
      {mesh.node(2, 0), mesh.node(3, 0), mesh.node(4, 0), mesh.node(1, 1), mesh.node(5, 1),
       mesh.node(0, 2), mesh.node(1, 3), mesh.node(2, 5), mesh.node(3, 5), mesh.node(5, 5)}};
}

TEST(XFirstMt, PaperExampleTraffic) {
  const Mesh2D mesh(6, 6);
  const MulticastRequest req = paper_6x6_request(mesh);
  const MulticastRoute route = xfirst_mt_route(mesh, req);
  verify_route(mesh, req, route);
  // The paper's prose says 24, but the union of the ten X-first paths in
  // Fig. 5.11 contains exactly 23 distinct links (8 east + 10 west + 3
  // north + 2 south) -- the prose is off by one.
  EXPECT_EQ(route.traffic(), 23u);
}

TEST(XFirstMt, DeliveriesUseShortestPaths) {
  // Theorem 5.3: the tree reaches each destination along an X-first
  // shortest path, so delivery depth == Manhattan distance.
  const Mesh2D mesh(8, 8);
  evsim::Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 20);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = xfirst_mt_route(mesh, req);
    verify_route(mesh, req, route);
    for (const std::uint32_t li : route.trees[0].delivery_links) {
      const auto& link = route.trees[0].links[li];
      EXPECT_EQ(link.depth, mesh.distance(src, link.to));
    }
  }
}

TEST(DividedGreedyMt, PaperExampleBeatsXFirst) {
  // Fig. 5.12 vs Fig. 5.11: the divided greedy pattern uses fewer channels
  // than X-first (24) on the Section 5.4 example.
  const Mesh2D mesh(6, 6);
  const MulticastRequest req = paper_6x6_request(mesh);
  const MulticastRoute dg = divided_greedy_mt_route(mesh, req);
  verify_route(mesh, req, dg);
  EXPECT_LT(dg.traffic(), 24u);
}

TEST(DividedGreedyMt, PaperExampleInitialSplit) {
  // The example's first split sends three branches: +Y with {(3,5),(2,5),
  // (5,5)}, -X with {(0,2),(1,3),(1,1)}, -Y with {(3,0),(2,0),(4,0),(5,1)}
  // -- and, critically, no +X branch (S3x merged into -Y).
  const Mesh2D mesh(6, 6);
  const MulticastRequest req = paper_6x6_request(mesh);
  const MulticastRoute dg = divided_greedy_mt_route(mesh, req);
  std::set<NodeId> first_hops;
  for (const auto& l : dg.trees[0].links) {
    if (l.parent < 0) first_hops.insert(l.to);
  }
  EXPECT_EQ(first_hops,
            (std::set<NodeId>{mesh.node(3, 3), mesh.node(2, 2), mesh.node(3, 1)}));
}

TEST(DividedGreedyMt, DeliveriesUseShortestPaths) {
  // Theorem 5.4: every destination reached along a shortest path.
  const Mesh2D mesh(8, 8);
  evsim::Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 25);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = divided_greedy_mt_route(mesh, req);
    verify_route(mesh, req, route);
    for (const std::uint32_t li : route.trees[0].delivery_links) {
      const auto& link = route.trees[0].links[li];
      EXPECT_EQ(link.depth, mesh.distance(src, link.to));
    }
  }
}

TEST(DividedGreedyMt, NeverWorseThanXFirstOnAverage) {
  // Fig. 7.5's shape: divided greedy generates less traffic than X-first.
  const Mesh2D mesh(16, 16);
  evsim::Rng rng(29);
  std::uint64_t xf_total = 0, dg_total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(2, 40);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    xf_total += xfirst_mt_route(mesh, req).traffic();
    dg_total += divided_greedy_mt_route(mesh, req).traffic();
  }
  EXPECT_LT(dg_total, xf_total);
}

TEST(LenTree, DeliveriesUseShortestPathsAndCoverAll) {
  const Hypercube cube(6);
  evsim::Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId src = rng.uniform_int(0, cube.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 30);
    const MulticastRequest req{src, rng.sample_destinations(cube.num_nodes(), src, k)};
    const MulticastRoute route = len_tree_route(cube, req);
    verify_route(cube, req, route);
    for (const std::uint32_t li : route.trees[0].delivery_links) {
      const auto& link = route.trees[0].links[li];
      EXPECT_EQ(link.depth, cube.distance(src, link.to));
    }
  }
}

TEST(LenTree, SharedDimensionIsReusedOnce) {
  // Destinations 011 and 010 from source 000 share dimension 1: the greedy
  // cover sends one copy across it (traffic 3, not 4... traffic: link to
  // 010, then 010->011: 2 links total).
  const Hypercube cube(3);
  const MulticastRequest req{0b000, {0b010, 0b011}};
  const MulticastRoute route = len_tree_route(cube, req);
  verify_route(cube, req, route);
  EXPECT_EQ(route.traffic(), 2u);
}

TEST(LenTree, GreedyPicksDominantDimension) {
  // Three of four destinations differ from the source in bit 2; the first
  // branch must cross dimension 2 carrying those three.
  const Hypercube cube(4);
  const MulticastRequest req{0b0000, {0b0100, 0b0101, 0b0110, 0b0001}};
  const MulticastRoute route = len_tree_route(cube, req);
  verify_route(cube, req, route);
  const auto& first = route.trees[0].links[0];
  EXPECT_EQ(first.to, 0b0100u);
}

}  // namespace
