// Double-channel X-first tree multicast (Section 6.2.1).
#include <gtest/gtest.h>

#include <set>

#include "core/dc_xfirst_tree.hpp"
#include "core/xfirst_mt.hpp"
#include "evsim/random.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using mcast::Quadrant;
using topo::Coord2;
using topo::Mesh2D;
using topo::NodeId;

TEST(Quadrants, HalfOpenPartitionCoversEverything) {
  // Every destination != source falls in exactly one quadrant.
  const Coord2 s{3, 3};
  int counts[4] = {0, 0, 0, 0};
  for (std::int32_t x = 0; x < 8; ++x) {
    for (std::int32_t y = 0; y < 8; ++y) {
      if (x == s.x && y == s.y) continue;
      ++counts[static_cast<int>(mcast::quadrant_of(s, Coord2{x, y}))];
    }
  }
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 63);
  for (const int c : counts) EXPECT_GT(c, 0);
}

TEST(Quadrants, AxisTieRules) {
  const Coord2 s{3, 3};
  EXPECT_EQ(mcast::quadrant_of(s, {5, 3}), Quadrant::kPosXPosY);  // +X axis
  EXPECT_EQ(mcast::quadrant_of(s, {3, 5}), Quadrant::kNegXPosY);  // +Y axis
  EXPECT_EQ(mcast::quadrant_of(s, {1, 3}), Quadrant::kNegXNegY);  // -X axis
  EXPECT_EQ(mcast::quadrant_of(s, {3, 1}), Quadrant::kPosXNegY);  // -Y axis
}

TEST(Quadrants, ChannelCopyAssignmentIsDisjoint) {
  // The two subnetworks sharing a direction must own different copies.
  using mcast::quadrant_channel_copy;
  EXPECT_NE(quadrant_channel_copy(Quadrant::kPosXPosY, 1, 0),
            quadrant_channel_copy(Quadrant::kPosXNegY, 1, 0));
  EXPECT_NE(quadrant_channel_copy(Quadrant::kNegXPosY, -1, 0),
            quadrant_channel_copy(Quadrant::kNegXNegY, -1, 0));
  EXPECT_NE(quadrant_channel_copy(Quadrant::kPosXPosY, 0, 1),
            quadrant_channel_copy(Quadrant::kNegXPosY, 0, 1));
  EXPECT_NE(quadrant_channel_copy(Quadrant::kPosXNegY, 0, -1),
            quadrant_channel_copy(Quadrant::kNegXNegY, 0, -1));
}

TEST(DcXFirstTree, Fig63ExampleQuadrantSplit) {
  // Section 6.2.1's example: 6x6 mesh, source (3,2), destinations split as
  // D_{+X,+Y} = {(4,5),(5,3),(5,4)}, D_{-X,+Y} = {(0,5),(1,3)},
  // D_{-X,-Y} = {(0,0),(0,2)}, D_{+X,-Y} = {(5,0),(5,1)}.
  const Mesh2D mesh(6, 6);
  const MulticastRequest req{
      mesh.node(3, 2),
      {mesh.node(0, 0), mesh.node(0, 2), mesh.node(0, 5), mesh.node(1, 3), mesh.node(4, 5),
       mesh.node(5, 0), mesh.node(5, 1), mesh.node(5, 3), mesh.node(5, 4)}};
  const MulticastRoute route = dc_xfirst_tree_route(mesh, req);
  verify_route(mesh, req, route);
  ASSERT_EQ(route.trees.size(), 4u);

  const auto dests_of = [&](Quadrant q) {
    std::set<NodeId> out;
    for (const auto& t : route.trees) {
      if (t.channel_class != static_cast<std::uint8_t>(q)) continue;
      for (const std::uint32_t li : t.delivery_links) out.insert(t.links[li].to);
    }
    return out;
  };
  EXPECT_EQ(dests_of(Quadrant::kPosXPosY),
            (std::set<NodeId>{mesh.node(4, 5), mesh.node(5, 3), mesh.node(5, 4)}));
  EXPECT_EQ(dests_of(Quadrant::kNegXPosY),
            (std::set<NodeId>{mesh.node(0, 5), mesh.node(1, 3)}));
  EXPECT_EQ(dests_of(Quadrant::kNegXNegY),
            (std::set<NodeId>{mesh.node(0, 0), mesh.node(0, 2)}));
  EXPECT_EQ(dests_of(Quadrant::kPosXNegY),
            (std::set<NodeId>{mesh.node(5, 0), mesh.node(5, 1)}));
}

TEST(DcXFirstTree, LinksStayInsideTheirQuadrantSubnetwork) {
  const Mesh2D mesh(8, 8);
  evsim::Rng rng(67);
  static constexpr std::pair<std::int32_t, std::int32_t> kSigns[4] = {
      {+1, +1}, {-1, +1}, {-1, -1}, {+1, -1}};
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 25);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = dc_xfirst_tree_route(mesh, req);
    verify_route(mesh, req, route);
    for (const auto& t : route.trees) {
      const auto [sx, sy] = kSigns[t.channel_class];
      for (const auto& l : t.links) {
        const Coord2 a = mesh.coord(l.from);
        const Coord2 b = mesh.coord(l.to);
        const bool x_move = (b.x - a.x == sx) && (b.y == a.y);
        const bool y_move = (b.y - a.y == sy) && (b.x == a.x);
        EXPECT_TRUE(x_move || y_move)
            << "link leaves subnetwork " << int(t.channel_class);
      }
    }
  }
}

TEST(DcXFirstTree, DeliveriesUseShortestPaths) {
  const Mesh2D mesh(8, 8);
  evsim::Rng rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 20);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute route = dc_xfirst_tree_route(mesh, req);
    for (const auto& t : route.trees) {
      for (const std::uint32_t li : t.delivery_links) {
        EXPECT_EQ(t.links[li].depth, mesh.distance(src, t.links[li].to));
      }
    }
  }
}

TEST(DcXFirstTree, AtLeastAsMuchTrafficAsSingleChannelXFirst) {
  // Per-destination paths match plain X-first multicast, but the quadrant
  // partition sends upper- and lower-quadrant branches separately instead
  // of sharing an X run, so total traffic can only grow.
  const Mesh2D mesh(8, 8);
  evsim::Rng rng(73);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 30);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    EXPECT_GE(dc_xfirst_tree_route(mesh, req).traffic(),
              xfirst_mt_route(mesh, req).traffic());
  }
}

}  // namespace
