// ASCII route rendering.
#include <gtest/gtest.h>

#include "core/route_factory.hpp"
#include "viz/ascii.hpp"

namespace {

using namespace mcnet;

TEST(Viz, RendersSourceDestinationsAndLinks) {
  const topo::Mesh2D mesh(4, 4);
  const mcast::MeshRoutingSuite suite(mesh);
  const mcast::MulticastRequest req{9, {0, 1, 6, 12}};
  const mcast::MulticastRoute route = suite.route(mcast::Algorithm::kSortedMP, req);
  const std::string art = viz::render_mesh_route(mesh, req, route);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'S'), 1);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'D'), 4);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 7);  // 2*4-1 rows
  // The 8-hop MP uses 8 links; each horizontal link paints "---", vertical "|".
  const auto dashes = std::count(art.begin(), art.end(), '-');
  const auto bars = std::count(art.begin(), art.end(), '|');
  EXPECT_EQ(dashes / 3 + bars, 8);
}

TEST(Viz, UntouchedNodesStayDotted) {
  const topo::Mesh2D mesh(3, 3);
  const mcast::MeshRoutingSuite suite(mesh);
  const mcast::MulticastRequest req{0, {1}};
  const std::string art =
      viz::render_mesh_route(mesh, req, suite.route(mcast::Algorithm::kDualPath, req));
  EXPECT_EQ(std::count(art.begin(), art.end(), '.'), 7);  // 9 - S - D
}

TEST(Viz, DescribeRouteMarksDeliveries) {
  const topo::Mesh2D mesh(4, 4);
  const mcast::MeshRoutingSuite suite(mesh);
  const mcast::MulticastRequest req{0, {3, 12}};
  const std::string text =
      viz::describe_route(suite.route(mcast::Algorithm::kDualPath, req));
  EXPECT_NE(text.find("path 0"), std::string::npos);
  EXPECT_NE(text.find("3!"), std::string::npos);
  EXPECT_NE(text.find("12!"), std::string::npos);
}

TEST(Viz, DescribeRouteListsTreeLinks) {
  const topo::Mesh2D mesh(4, 4);
  const mcast::MeshRoutingSuite suite(mesh);
  const mcast::MulticastRequest req{5, {6, 9}};
  const std::string text =
      viz::describe_route(suite.route(mcast::Algorithm::kXFirstMT, req));
  EXPECT_NE(text.find("tree 0"), std::string::npos);
  EXPECT_NE(text.find("[5->6!]"), std::string::npos);
}

}  // namespace
