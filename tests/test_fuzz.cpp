// Consolidated randomized fuzz: random topologies x random requests x every
// applicable algorithm, checking the cross-cutting invariants in one sweep:
//   * every route validates structurally (verify_route);
//   * the Chapter 3 model hierarchy holds instance-by-instance
//     (Steiner optimum <= star optimum <= walk optimum; heuristics above
//     their model's optimum);
//   * every deadlock-free route drains through the wormhole simulator.
#include <gtest/gtest.h>

#include "core/exact.hpp"
#include "core/route_factory.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/network.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using topo::NodeId;

class FuzzMesh : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzMesh, AllInvariantsOnRandomInstance) {
  evsim::Rng rng(GetParam());
  const std::uint32_t w = rng.uniform_int(2, 9);
  const std::uint32_t h = rng.uniform_int(2, 9);
  const topo::Mesh2D mesh(w, h);
  const mcast::MeshRoutingSuite suite(mesh);

  const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
  const std::uint32_t k = rng.uniform_int(1, std::min(8u, mesh.num_nodes() - 1));
  const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};

  // Model optima and their hierarchy.
  const std::uint64_t st_opt = mcast::exact::steiner_tree_optimum(mesh, req);
  const std::uint64_t ms_opt = mcast::exact::multicast_star_optimum_bound(mesh, req);
  const std::uint64_t mp_opt = mcast::exact::multicast_path_optimum_bound(mesh, req);
  EXPECT_LE(st_opt, ms_opt);
  EXPECT_LE(ms_opt, mp_opt);

  evsim::Scheduler sched;
  worm::Network net(mesh, {.flit_time = 1.0, .message_flits = 6, .channel_copies = 2},
                    sched);

  const std::vector<Algorithm> algos = {
      Algorithm::kMultiUnicast, Algorithm::kBroadcast,       Algorithm::kGreedyST,
      Algorithm::kXFirstMT,     Algorithm::kDividedGreedyMT, Algorithm::kDualPath,
      Algorithm::kMultiPath,    Algorithm::kFixedPath,       Algorithm::kDCXFirstTree};
  for (const Algorithm a : algos) {
    SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
    const MulticastRoute route = suite.route(a, req);
    verify_route(mesh, req, route);
    // Heuristics cannot beat their model's optimum.
    if (a == Algorithm::kGreedyST) {
      EXPECT_GE(route.traffic(), st_opt);
    }
    if (a == Algorithm::kDualPath || a == Algorithm::kMultiPath ||
        a == Algorithm::kFixedPath) {
      EXPECT_GE(route.traffic(), ms_opt);
    }
    // Replay through the simulator (double channels so even the tree
    // shapes are deadlock-free); no deliveries may be lost.
    net.inject(worm::make_worm_specs(mesh, route, 2));
  }
  if (suite.cycle()) {
    for (const Algorithm a : {Algorithm::kSortedMP, Algorithm::kSortedMC}) {
      const MulticastRoute route = suite.route(a, req);
      verify_route(mesh, req, route);
      EXPECT_GE(route.traffic(), a == Algorithm::kSortedMP ? mp_opt : mp_opt);
      net.inject(worm::make_worm_specs(mesh, route, 2));
    }
  }
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.pool().busy_count(), 0u);
  EXPECT_TRUE(net.find_deadlock().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMesh, ::testing::Range<std::uint64_t>(1, 33));

class FuzzCube : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCube, AllInvariantsOnRandomInstance) {
  evsim::Rng rng(GetParam() * 7919);
  const std::uint32_t n = rng.uniform_int(2, 7);
  const topo::Hypercube cube(n);
  const mcast::CubeRoutingSuite suite(cube);

  const NodeId src = rng.uniform_int(0, cube.num_nodes() - 1);
  const std::uint32_t k = rng.uniform_int(1, std::min(8u, cube.num_nodes() - 1));
  const MulticastRequest req{src, rng.sample_destinations(cube.num_nodes(), src, k)};

  const std::uint64_t st_opt = mcast::exact::steiner_tree_optimum(cube, req);
  const std::uint64_t ms_opt = mcast::exact::multicast_star_optimum_bound(cube, req);
  EXPECT_LE(st_opt, ms_opt);

  evsim::Scheduler sched;
  worm::Network net(cube, {.flit_time = 1.0, .message_flits = 6, .channel_copies = 1},
                    sched);
  for (const Algorithm a :
       {Algorithm::kMultiUnicast, Algorithm::kBroadcast, Algorithm::kSortedMP,
        Algorithm::kGreedyST, Algorithm::kLenTree, Algorithm::kDualPath,
        Algorithm::kMultiPath, Algorithm::kFixedPath}) {
    SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
    const MulticastRoute route = suite.route(a, req);
    verify_route(cube, req, route);
    if (a == Algorithm::kGreedyST || a == Algorithm::kLenTree) {
      EXPECT_GE(route.traffic(), st_opt);
    }
  }
  // Path algorithms drain even on single channels (they are the
  // deadlock-free ones); inject them all concurrently.
  for (const Algorithm a :
       {Algorithm::kDualPath, Algorithm::kMultiPath, Algorithm::kFixedPath}) {
    net.inject(worm::make_worm_specs(cube, suite.route(a, req), 1));
  }
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_TRUE(net.find_deadlock().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCube, ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
