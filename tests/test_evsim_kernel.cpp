// Kernel contract tests for the rebuilt evsim::Scheduler: same-timestamp
// FIFO order (the determinism rule golden replay relies on), the
// ulp-tolerant past-time clamp, the handler-exception contract, true
// cancellation semantics, calendar-queue window mechanics, and a
// randomized differential run against the preserved binary-heap kernel.
//
// Suite names start with "Kernel" on purpose: the TSan CI job includes
// them via its -R 'Kernel|Sched|...' ctest filter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "evsim/legacy_heap.hpp"
#include "evsim/scheduler.hpp"

namespace {

using mcnet::evsim::EventId;
using mcnet::evsim::LegacyHeapScheduler;
using mcnet::evsim::Scheduler;

// ---------------------------------------------------------------------
// Same-timestamp FIFO order
// ---------------------------------------------------------------------

TEST(KernelOrder, SameTimestampRunsInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(1.0, [&] { order.push_back(0); });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(0.5, [&] { order.push_back(2); });
  sched.schedule_at(1.0, [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1, 3}));
}

TEST(KernelOrder, HandlerScheduledEventsAtCurrentTimeRunAfterQueuedTies) {
  // Events scheduled from inside a running handler at the current
  // timestamp must run after every already-queued event at that timestamp
  // (they carry larger sequence numbers).  This order was implicit in the
  // old heap kernel; the calendar kernel pins it.
  Scheduler sched;
  std::vector<std::string> order;
  sched.schedule_at(1.0, [&] {
    order.push_back("a");
    sched.schedule_at(1.0, [&] { order.push_back("a.child"); });
  });
  sched.schedule_at(1.0, [&] { order.push_back("b"); });
  sched.schedule_at(2.0, [&] { order.push_back("c"); });
  sched.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a.child", "c"}));
}

TEST(KernelOrder, ZeroDelayChainsFromHandlersStayFifo) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_in(0.0, [&] {
    order.push_back(1);
    sched.schedule_in(0.0, [&] { order.push_back(3); });
  });
  sched.schedule_in(0.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 0.0);
}

TEST(KernelOrder, StepDispatchesExactlyOneEvent) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1.0, [&] { ++fired; });
  sched.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.events_dispatched(), 2u);
}

// ---------------------------------------------------------------------
// Past-time clamp (sub-ulp derived-time drift)
// ---------------------------------------------------------------------

TEST(KernelClamp, OneUlpBehindNowIsClampedToNow) {
  Scheduler sched;
  sched.schedule_at(0.3, [] {});
  sched.run();
  ASSERT_DOUBLE_EQ(sched.now(), 0.3);
  const double just_past = std::nextafter(sched.now(), 0.0);
  ASSERT_LT(just_past, sched.now());
  double fired_at = -1.0;
  EXPECT_NO_THROW(sched.schedule_at(just_past, [&] { fired_at = sched.now(); }));
  sched.run();
  EXPECT_EQ(fired_at, 0.3);  // clamped to now, not dispatched "in the past"
}

TEST(KernelClamp, DerivedMilestoneArithmeticDoesNotThrow) {
  // Regression for the wormhole drain expression t0 + (d + L - 1 - p) * tau:
  // accumulating now() through many tau-sized hops and then recomputing a
  // milestone as base + k * tau can undershoot the accumulated clock by a
  // few ulp.  Those schedules must clamp, not throw.
  Scheduler sched;
  const double tau = 50e-9;
  double base = 0.0;
  int hops = 0;
  // Walk the clock to base + 7*tau via single-tau steps (accumulated sum),
  // then schedule at base + 7*tau (one multiply) -- a bit pattern that can
  // differ from the accumulated value in either direction.
  std::function<void()> hop = [&] {
    if (++hops < 7) {
      sched.schedule_in(tau, hop);
      return;
    }
    EXPECT_NO_THROW(sched.schedule_at(base + 7.0 * tau, [] {}));
  };
  sched.schedule_at(base, hop);
  EXPECT_NO_THROW(sched.run());
  EXPECT_EQ(hops, 7);
}

TEST(KernelClamp, GenuinelyPastTimesStillThrow) {
  Scheduler sched;
  sched.schedule_at(2.0, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sched.schedule_at(sched.now() - 1e-9, [] {}), std::invalid_argument);
}

TEST(KernelClamp, NanIsRejected) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_at(std::numeric_limits<double>::quiet_NaN(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sched.schedule_in(std::numeric_limits<double>::quiet_NaN(), [] {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Exception contract
// ---------------------------------------------------------------------

TEST(KernelExceptions, RunUntilLeavesConsistentStateWhenHandlerThrows) {
  Scheduler sched;
  std::vector<int> ran;
  sched.schedule_at(1.0, [&] { ran.push_back(1); });
  sched.schedule_at(2.0, [&]() -> void { throw std::runtime_error("boom"); });
  sched.schedule_at(3.0, [&] { ran.push_back(3); });

  EXPECT_THROW(sched.run_until(5.0), std::runtime_error);
  // The throwing event counts as dispatched, the clock rests at its time
  // (not t_end), and the rest of the queue is intact.
  EXPECT_EQ(sched.events_dispatched(), 2u);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_EQ(ran, (std::vector<int>{1}));

  // The scheduler stays fully usable after the throw.
  EXPECT_EQ(sched.run_until(5.0), 1u);
  EXPECT_EQ(ran, (std::vector<int>{1, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
  EXPECT_TRUE(sched.empty());
}

TEST(KernelExceptions, ThrowingHandlerCallableIsDestroyed) {
  Scheduler sched;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  sched.schedule_at(1.0, [t = std::move(token)]() -> void { throw std::runtime_error("x"); });
  EXPECT_FALSE(watch.expired());
  EXPECT_THROW(sched.run(), std::runtime_error);
  // The capture is destroyed on the throw path, not leaked in the slab.
  EXPECT_TRUE(watch.expired());
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

TEST(KernelCancel, CancelledEventNeverRunsAndReleasesCapturesImmediately) {
  Scheduler sched;
  auto resource = std::make_shared<int>(42);
  std::weak_ptr<int> watch = resource;
  bool ran = false;
  EventId id = sched.schedule_at(1.0, [r = std::move(resource), &ran] { ran = true; });
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(sched.pending(), 1u);

  EXPECT_TRUE(sched.cancel(id));
  // The capture dies at cancel() time -- before the queue drains.
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.events_cancelled(), 1u);

  sched.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sched.events_dispatched(), 0u);
}

TEST(KernelCancel, DoubleCancelAndCancelAfterFireAreNoOps) {
  Scheduler sched;
  EventId id = sched.schedule_at(1.0, [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // second cancel: already dead

  int fired = 0;
  EventId live = sched.schedule_at(2.0, [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sched.cancel(live));  // already fired
  EXPECT_FALSE(sched.cancel(EventId{}));  // null handle
}

TEST(KernelCancel, StaleHandleToReusedSlotDoesNotKillTheNewEvent) {
  Scheduler sched;
  EventId old_id = sched.schedule_at(1.0, [] {});
  EXPECT_TRUE(sched.cancel(old_id));
  // Drain the carcass so the slot returns to the freelist, then reuse it.
  sched.run();
  bool ran = false;
  (void)sched.schedule_at(1.0, [&] { ran = true; });
  EXPECT_FALSE(sched.cancel(old_id));  // generation mismatch: stale handle
  sched.run();
  EXPECT_TRUE(ran);
}

TEST(KernelCancel, CancelInterleavedWithDispatchKeepsOrder) {
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sched.schedule_at(1.0 + i, [&order, i] { order.push_back(i); }));
  }
  // Cancel every odd event, including from inside a handler.
  EXPECT_TRUE(sched.cancel(ids[1]));
  EXPECT_TRUE(sched.cancel(ids[9]));
  sched.schedule_at(2.5, [&] {
    EXPECT_TRUE(sched.cancel(ids[3]));
    EXPECT_TRUE(sched.cancel(ids[5]));
    EXPECT_TRUE(sched.cancel(ids[7]));
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
  EXPECT_EQ(sched.events_cancelled(), 5u);
}

TEST(KernelCancel, CancellingTheRunningEventIsANoOp) {
  Scheduler sched;
  EventId self;
  bool reported = true;
  self = sched.schedule_at(1.0, [&] { reported = sched.cancel(self); });
  sched.run();
  EXPECT_FALSE(reported);  // a running event can no longer be cancelled
  EXPECT_EQ(sched.events_dispatched(), 1u);
}

// ---------------------------------------------------------------------
// Calendar-queue mechanics
// ---------------------------------------------------------------------

TEST(KernelCalendar, FarFutureEventsParkInOverflowAndStillFireInOrder) {
  Scheduler sched;
  std::vector<double> fired;
  // Dense near-term traffic at nanosecond spacing...
  for (int i = 1; i <= 1000; ++i) {
    sched.schedule_at(i * 50e-9, [&fired, &sched] { fired.push_back(sched.now()); });
  }
  // ...plus sparse far-future timeouts (a 1 s and a 2 s timer).
  sched.schedule_at(2.0, [&fired, &sched] { fired.push_back(sched.now()); });
  sched.schedule_at(1.0, [&fired, &sched] { fired.push_back(sched.now()); });
  EXPECT_GT(sched.overflow_size(), 0u)
      << "second-scale timers should sit in the overflow band, not the window";
  sched.run();
  ASSERT_EQ(fired.size(), 1002u);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
  EXPECT_DOUBLE_EQ(fired[1000], 1.0);
  EXPECT_DOUBLE_EQ(fired[1001], 2.0);
}

TEST(KernelCalendar, WindowJumpAcrossLongIdleGapPreservesSubsequentInserts) {
  Scheduler sched;
  std::vector<std::string> order;
  sched.schedule_at(10e-9, [&] { order.push_back("early"); });
  // After a long dead stretch the window must jump to the far event...
  sched.schedule_at(5.0, [&] {
    order.push_back("late");
    // ...and events scheduled afterwards at nearby times still order
    // correctly even though the window teleported.
    sched.schedule_in(10e-9, [&] { order.push_back("late+10ns"); });
    sched.schedule_in(0.0, [&] { order.push_back("late+0"); });
  });
  sched.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"early", "late", "late+0", "late+10ns"}));
}

TEST(KernelCalendar, GrowAndRetuneNeverReorder) {
  // Push far past the initial bucket count (256) with mixed timescales so
  // the queue grows and retunes mid-run; order must stay strict (t, seq).
  Scheduler sched;
  std::vector<double> fired;
  fired.reserve(40000);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 40000; ++i) {
    const double scale = (i % 3 == 0) ? 1e-3 : 1e-6;
    const double t = static_cast<double>(next() % 1000000) * scale / 1e3;
    sched.schedule_at(t, [&fired, &sched] { fired.push_back(sched.now()); });
  }
  sched.run();
  ASSERT_EQ(fired.size(), 40000u);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
  EXPECT_GT(sched.num_buckets(), 256u);  // the arena grew under load
}

TEST(KernelCalendar, HugeTimestampsDoNotWedgeTheWindow) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(1e16, [&] { order.push_back(2); });  // beyond 2^53 buckets
  sched.schedule_at(std::numeric_limits<double>::infinity(), [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------
// Differential vs the preserved heap kernel
// ---------------------------------------------------------------------

namespace diff {

constexpr std::uint64_t kMix = 0xbf58476d1ce4e5b9ull;

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * kMix;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Self-expanding workload: event `tag` fires, records itself, and spawns
/// 0-2 children at deterministic offsets derived from the tag alone.  The
/// trace depends only on dispatch order, so two kernels that agree on
/// (time, schedule-order) dispatch produce bit-identical traces.
template <typename Sched>
void spawn(Sched& sched, std::vector<std::pair<double, std::uint64_t>>& trace,
           std::uint64_t& budget, std::uint64_t tag, double t) {
  sched.schedule_at(t, [&sched, &trace, &budget, tag] {
    trace.emplace_back(sched.now(), tag);
    if (budget == 0) return;
    const std::uint64_t h = splitmix(tag);
    // Supercritical branching (1-2 children, mean 1.5): the population
    // grows until the shared budget, not extinction, ends the run.
    const int kids = static_cast<int>(1 + h % 2);
    for (int k = 0; k < kids && budget > 0; ++k) {
      --budget;
      const std::uint64_t child = splitmix(h + static_cast<std::uint64_t>(k) + 1);
      // Mixed timescales: ns-grain steps with occasional ms-scale jumps,
      // and a deliberate dose of zero-delay (same-timestamp) children.
      const std::uint64_t sel = child % 10;
      double dt = 0.0;
      if (sel >= 2) dt = static_cast<double>(child % 997) * 50e-9;
      if (sel == 9) dt += 1e-3;
      spawn(sched, trace, budget, child, sched.now() + dt);
    }
  });
}

}  // namespace diff

TEST(KernelDifferential, MatchesLegacyHeapDispatchOn100kEvents) {
  std::vector<std::pair<double, std::uint64_t>> calendar_trace;
  std::vector<std::pair<double, std::uint64_t>> heap_trace;
  constexpr std::uint64_t kBudget = 100000;

  {
    Scheduler sched;
    std::uint64_t budget = kBudget;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      diff::spawn(sched, calendar_trace, budget, diff::splitmix(seed),
                  static_cast<double>(seed) * 11e-9);
    }
    sched.run();
  }
  {
    LegacyHeapScheduler sched;
    std::uint64_t budget = kBudget;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      diff::spawn(sched, heap_trace, budget, diff::splitmix(seed),
                  static_cast<double>(seed) * 11e-9);
    }
    sched.run();
  }

  ASSERT_GT(calendar_trace.size(), kBudget);
  ASSERT_EQ(calendar_trace.size(), heap_trace.size());
  for (std::size_t i = 0; i < calendar_trace.size(); ++i) {
    ASSERT_EQ(calendar_trace[i].second, heap_trace[i].second)
        << "dispatch order diverged from the heap kernel at event " << i;
    // Bit-exact times: both kernels dispatch at the scheduled double.
    ASSERT_EQ(calendar_trace[i].first, heap_trace[i].first);
  }
}

TEST(KernelDifferential, RunUntilAgreesWithLegacyHeap) {
  std::vector<std::pair<double, std::uint64_t>> calendar_trace;
  std::vector<std::pair<double, std::uint64_t>> heap_trace;
  constexpr std::uint64_t kBudget = 20000;
  constexpr double kCut = 1.5e-3;

  Scheduler cal;
  {
    std::uint64_t budget = kBudget;
    for (std::uint64_t seed = 100; seed < 108; ++seed) {
      diff::spawn(cal, calendar_trace, budget, diff::splitmix(seed), 0.0);
    }
  }
  const std::uint64_t cal_n = cal.run_until(kCut);

  LegacyHeapScheduler heap;
  {
    std::uint64_t budget = kBudget;
    for (std::uint64_t seed = 100; seed < 108; ++seed) {
      diff::spawn(heap, heap_trace, budget, diff::splitmix(seed), 0.0);
    }
  }
  const std::uint64_t heap_n = heap.run_until(kCut);

  EXPECT_EQ(cal_n, heap_n);
  EXPECT_EQ(cal.now(), heap.now());
  ASSERT_EQ(calendar_trace.size(), heap_trace.size());
  EXPECT_EQ(calendar_trace, heap_trace);
}

}  // namespace
