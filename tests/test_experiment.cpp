// Dynamic-experiment harness integration tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>

#include "core/route_factory.hpp"
#include "wormhole/experiment.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;
using mcast::MeshRoutingSuite;
using topo::Mesh2D;
using topo::NodeId;
using worm::DynamicConfig;
using worm::DynamicResult;
using worm::RouteBuilder;

RouteBuilder make_builder(const MeshRoutingSuite& suite, Algorithm algo,
                          std::uint8_t copies) {
  return [&suite, algo, copies](NodeId src, const std::vector<NodeId>& dests) {
    return worm::make_worm_specs(suite.mesh(),
                                 suite.route(algo, mcast::MulticastRequest{src, dests}),
                                 copies);
  };
}

TEST(DynamicExperiment, LowLoadLatencyNearContentionFreeMinimum) {
  // At very light load the mean per-destination latency must sit close to
  // the contention-free value (distance + L - 1 flit times) and the run
  // must converge.
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  DynamicConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
  cfg.traffic = {.mean_interarrival_s = 10e-3,  // essentially no contention
                 .avg_destinations = 10,
                 .fixed_destinations = false,
                 .exponential_interarrival = false,
                 .seed = 11};
  cfg.target_messages = 400;
  cfg.max_messages = 2000;
  cfg.max_sim_time_s = 10.0;
  cfg.batch_size = 300;
  const DynamicResult r =
      run_dynamic(mesh, make_builder(suite, Algorithm::kDualPath, 1), cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.deliveries, 1000u);
  // Floor: (min distance 1 + 127 flits) * 50 ns = 6.4 us; dual-path visits
  // up to ~tens of hops, so the mean must be in (6.4, ~25) us at no load.
  EXPECT_GT(r.mean_latency_us, 6.4);
  EXPECT_LT(r.mean_latency_us, 30.0);
}

TEST(DynamicExperiment, LatencyIncreasesWithLoad) {
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  double prev = 0.0;
  for (const double interarrival : {5e-3, 400e-6, 150e-6}) {
    DynamicConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
    cfg.traffic = {.mean_interarrival_s = interarrival,
                   .avg_destinations = 10,
                   .fixed_destinations = false,
                   .exponential_interarrival = false,
                   .seed = 13};
    cfg.target_messages = 600;
    cfg.max_messages = 3000;
    cfg.max_sim_time_s = 5.0;
    const DynamicResult r =
        run_dynamic(mesh, make_builder(suite, Algorithm::kDualPath, 1), cfg);
    EXPECT_GT(r.mean_latency_us, prev) << "interarrival " << interarrival;
    prev = r.mean_latency_us;
  }
}

TEST(DynamicExperiment, DeterministicAcrossRuns) {
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  DynamicConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
  cfg.traffic = {.mean_interarrival_s = 500e-6,
                 .avg_destinations = 8,
                 .fixed_destinations = false,
                 .exponential_interarrival = false,
                 .seed = 17};
  cfg.target_messages = 300;
  cfg.max_messages = 600;
  cfg.max_sim_time_s = 2.0;
  const DynamicResult a =
      run_dynamic(mesh, make_builder(suite, Algorithm::kMultiPath, 1), cfg);
  const DynamicResult b =
      run_dynamic(mesh, make_builder(suite, Algorithm::kMultiPath, 1), cfg);
  EXPECT_DOUBLE_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.messages_completed, b.messages_completed);
}

TEST(DynamicExperiment, TreeOnDoubleChannelsCompletes) {
  // The double-channel X-first tree is deadlock-free: a dynamic run must
  // make progress and complete messages (Assertion 1 under load).
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  DynamicConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 2};
  cfg.traffic = {.mean_interarrival_s = 600e-6,
                 .avg_destinations = 10,
                 .fixed_destinations = false,
                 .exponential_interarrival = false,
                 .seed = 19};
  cfg.target_messages = 400;
  cfg.max_messages = 1500;
  cfg.max_sim_time_s = 2.0;
  const DynamicResult r =
      run_dynamic(mesh, make_builder(suite, Algorithm::kDCXFirstTree, 2), cfg);
  EXPECT_GT(r.messages_completed, 300u);
  EXPECT_GT(r.mean_latency_us, 0.0);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(257);
  worm::parallel_for(257, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Degenerate cases.
  worm::parallel_for(0, [](std::size_t) { FAIL(); }, 4);
  int calls = 0;
  worm::parallel_for(3, [&](std::size_t) { ++calls; }, 1);
  EXPECT_EQ(calls, 3);
}

TEST(ParallelFor, RethrowsWorkerExceptionInsteadOfTerminating) {
  // A throwing body used to escape into the worker thread and
  // std::terminate the whole process; now the first exception is rethrown
  // on the calling thread after every worker joined.
  EXPECT_THROW(
      worm::parallel_for(
          64,
          [](std::size_t i) {
            if (i == 13) throw std::runtime_error("boom at 13");
          },
          4),
      std::runtime_error);

  try {
    worm::parallel_for(
        8, [](std::size_t) { throw std::logic_error("always"); }, 2);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "always");
  }

  // Remaining indices are abandoned after the failure: with one worker the
  // iteration order is deterministic, so nothing past the throw runs.
  std::vector<int> visited;
  EXPECT_THROW(worm::parallel_for(
                   10,
                   [&](std::size_t i) {
                     if (i == 3) throw std::runtime_error("stop");
                     visited.push_back(static_cast<int>(i));
                   },
                   1),
               std::runtime_error);
  EXPECT_EQ(visited, (std::vector<int>{0, 1, 2}));
}

TEST(DynamicExperiment, TinyRunReportsInvalidConfidenceInterval) {
  const Mesh2D mesh(4, 4);
  const MeshRoutingSuite suite(mesh);
  DynamicConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 16, .channel_copies = 1};
  cfg.traffic = {.mean_interarrival_s = 200e-6,
                 .avg_destinations = 2,
                 .fixed_destinations = true,
                 .exponential_interarrival = false,
                 .seed = 3};
  // A handful of messages cannot fill two effective batches, so the CI is
  // meaningless -- it must be flagged invalid and NaN, never silently 0.
  cfg.target_messages = 4;
  cfg.max_messages = 4;
  cfg.max_sim_time_s = 0.5;
  cfg.batch_size = 1000;
  const DynamicResult r = run_dynamic(mesh, make_builder(suite, Algorithm::kDualPath, 1), cfg);
  EXPECT_FALSE(r.ci_valid);
  EXPECT_TRUE(std::isnan(r.ci_half_us));
  EXPECT_GT(r.deliveries, 0u);
}

TEST(DynamicExperiment, LongRunReportsValidConfidenceInterval) {
  const Mesh2D mesh(4, 4);
  const MeshRoutingSuite suite(mesh);
  DynamicConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 16, .channel_copies = 1};
  cfg.traffic = {.mean_interarrival_s = 200e-6,
                 .avg_destinations = 2,
                 .fixed_destinations = true,
                 .exponential_interarrival = false,
                 .seed = 3};
  cfg.target_messages = 200;
  cfg.max_messages = 800;
  cfg.max_sim_time_s = 1.0;
  cfg.batch_size = 20;
  const DynamicResult r = run_dynamic(mesh, make_builder(suite, Algorithm::kDualPath, 1), cfg);
  EXPECT_TRUE(r.ci_valid);
  EXPECT_TRUE(std::isfinite(r.ci_half_us));
  EXPECT_GE(r.ci_half_us, 0.0);
}

}  // namespace
