// util::FlatMap: the sorted-vector map backing per-group control-plane
// state (ordering, std::map-compatible semantics, mutation helpers).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/flat_map.hpp"

namespace {

using mcnet::util::FlatMap;

TEST(FlatMap, InsertsKeepKeysSorted) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  m[30] = "c";
  m[10] = "a";
  m[20] = "b";
  EXPECT_EQ(m.size(), 3u);

  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(m.find(20)->second, "b");
  EXPECT_EQ(m.find(15), m.end());
  EXPECT_TRUE(m.contains(10));
  EXPECT_FALSE(m.contains(11));
}

TEST(FlatMap, OperatorBracketDefaultConstructsOnce) {
  FlatMap<int, int> m;
  EXPECT_EQ(m[5], 0);
  m[5] = 42;
  EXPECT_EQ(m[5], 42);  // no clobber on re-access
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, TryEmplaceIsNoOpOnExistingKey) {
  FlatMap<int, std::string> m;
  auto [it1, ins1] = m.try_emplace(1, "first");
  EXPECT_TRUE(ins1);
  auto [it2, ins2] = m.try_emplace(1, "second");
  EXPECT_FALSE(ins2);
  EXPECT_EQ(it2->second, "first");
  EXPECT_EQ(it1->first, 1);
}

TEST(FlatMap, InsertOrAssignOverwrites) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.insert_or_assign(7, "x").second);
  EXPECT_FALSE(m.insert_or_assign(7, "y").second);
  EXPECT_EQ(m.find(7)->second, "y");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseByKeyAndIterator) {
  FlatMap<int, int> m;
  for (int k = 0; k < 5; ++k) m[k] = k * k;
  EXPECT_EQ(m.erase(3), 1u);
  EXPECT_EQ(m.erase(3), 0u);
  EXPECT_EQ(m.size(), 4u);

  const auto it = m.find(1);
  ASSERT_NE(it, m.end());
  const auto next = m.erase(it);
  EXPECT_EQ(next->first, 2);
  EXPECT_FALSE(m.contains(1));
}

TEST(FlatMap, LowerBoundFindsInsertionPoint) {
  FlatMap<int, int> m;
  m[10] = 1;
  m[20] = 2;
  EXPECT_EQ(m.lower_bound(5)->first, 10);
  EXPECT_EQ(m.lower_bound(10)->first, 10);
  EXPECT_EQ(m.lower_bound(15)->first, 20);
  EXPECT_EQ(m.lower_bound(25), m.end());
}

TEST(FlatMap, RetainFiltersInOnePass) {
  FlatMap<int, int> m;
  for (int k = 0; k < 10; ++k) m[k] = k;
  m.retain([](const int& k, const int&) { return k % 3 == 0; });
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{0, 3, 6, 9}));
}

TEST(FlatMap, PairKeysOrderLexicographically) {
  // The receiver-stream map keys on (receiver, sender) pairs.
  FlatMap<std::pair<int, int>, int> m;
  m[{2, 1}] = 21;
  m[{1, 2}] = 12;
  m[{1, 1}] = 11;
  std::vector<std::pair<int, int>> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::pair<int, int>>{{1, 1}, {1, 2}, {2, 1}}));
  EXPECT_EQ(m.find({1, 2})->second, 12);
}

TEST(FlatMap, ClearAndReserve) {
  FlatMap<int, int> m;
  m.reserve(16);
  for (int k = 0; k < 8; ++k) m[k] = k;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(0));
}

}  // namespace
