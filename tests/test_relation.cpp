// Tests for the relation-based adaptive analyzer (src/analysis/relation.*):
// deterministic relation views as validation oracles against the route-based
// analyzer, escape-channel certification of the adaptive routing relations,
// planted deadlock controls with 1-minimal shrunk witnesses, and the
// machine-readable report round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/mcdg.hpp"
#include "analysis/relation.hpp"
#include "analysis/report.hpp"
#include "analysis/scenario.hpp"
#include "core/multicast.hpp"
#include "obs/json.hpp"

namespace {

using namespace mcnet;
using analysis::AnalysisConfig;
using analysis::RelationReport;
using analysis::RoutingRelation;
using mcast::Algorithm;
using mcast::MulticastRequest;
using topo::NodeId;

TEST(Relation, VerifiableRelationsMatchFixture) {
  const auto labeled = analysis::make_fixture("mesh:4x4");
  const auto names = analysis::verifiable_relations(labeled);
  for (const char* expected : {"adaptive-dual-path", "dual-path", "multi-path", "fixed-path",
                               "min-adaptive", "min-adaptive-escape"}) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), expected)) << expected;
  }
  EXPECT_THROW((void)analysis::make_relation(labeled, "no-such-relation"), std::invalid_argument);
}

// The singleton relation views of the deterministic suites are validation
// oracles: exploring the relation must reconstruct exactly the dependency
// set the route-based analyzer (PR 4) extracts from concrete routes, and
// certify CLEAN by plain CDG acyclicity.
TEST(Relation, DeterministicViewsMatchRouteBasedAnalyzer) {
  const struct {
    const char* relation;
    Algorithm algorithm;
  } views[] = {
      {"dual-path", Algorithm::kDualPath},
      {"multi-path", Algorithm::kMultiPath},
      {"fixed-path", Algorithm::kFixedPath},
  };
  for (const char* spec : {"mesh:4x4", "cube:3"}) {
    const auto fixture = analysis::make_fixture(spec);
    for (const auto& view : views) {
      const RoutingRelation rel = analysis::make_relation(fixture, view.relation);
      const RelationReport report = analysis::analyze_relation(rel);
      EXPECT_TRUE(report.cdg_acyclic) << spec << " " << view.relation;
      EXPECT_TRUE(report.certified()) << spec << " " << view.relation;
      EXPECT_EQ(report.stuck_states, 0u) << spec << " " << view.relation;
      EXPECT_FALSE(report.witness.has_value()) << spec << " " << view.relation;

      const auto scenario = analysis::make_scenario(fixture, view.algorithm);
      const auto oracle = analysis::analyze_deadlock(scenario, {});
      EXPECT_TRUE(oracle.deadlock_free()) << spec << " " << view.relation;
      EXPECT_EQ(report.instances_analyzed, oracle.instances_analyzed)
          << spec << " " << view.relation;
      EXPECT_EQ(report.dependencies, oracle.dependencies) << spec << " " << view.relation;
    }
  }
}

// The Section 8.2 randomized dual-path relation must certify on every CI
// topology, and by BOTH sufficient conditions: the closed CDG is acyclic
// (all choices stay label-monotone inside disjoint subnetworks), and the
// label-router escape subfunction independently passes Duato's condition.
TEST(Relation, AdaptiveDualPathCertifiedOnAllTopologies) {
  for (const char* spec : {"mesh:4x4", "cube:3", "mesh3:2x3x3", "kary:4x2", "karymesh:4x2"}) {
    const auto fixture = analysis::make_fixture(spec);
    const RoutingRelation rel = analysis::make_relation(fixture, "adaptive-dual-path");
    EXPECT_TRUE(rel.claimed_deadlock_free);
    const RelationReport report = analysis::analyze_relation(rel);
    EXPECT_EQ(report.stuck_states, 0u) << spec;
    EXPECT_TRUE(report.cdg_acyclic) << spec;
    ASSERT_TRUE(report.escape.checked) << spec;
    EXPECT_TRUE(report.escape.complete) << spec;
    EXPECT_TRUE(report.escape.acyclic) << spec;
    EXPECT_TRUE(report.escape.certified()) << spec;
    EXPECT_GT(report.escape.escape_channels, 0u) << spec;
    EXPECT_TRUE(report.escape.failures.empty()) << spec;
    EXPECT_GT(report.worm_states, 0u) << spec;
    EXPECT_GT(report.dependencies, 0u) << spec;
  }
}

// Planted negative control: fully adaptive minimal routing with no escape
// deadlocks, and the delta-debugged witness is 1-minimal -- dropping any
// single instance breaks every remaining cycle.
TEST(Relation, MinAdaptiveWitnessIsOneMinimal) {
  const auto fixture = analysis::make_fixture("mesh:4x4");
  const RoutingRelation rel = analysis::make_relation(fixture, "min-adaptive");
  EXPECT_FALSE(rel.claimed_deadlock_free);
  const RelationReport report = analysis::analyze_relation(rel);
  EXPECT_FALSE(report.cdg_acyclic);
  EXPECT_FALSE(report.certified());
  ASSERT_TRUE(report.witness.has_value());
  const auto& w = *report.witness;
  // Relation witnesses are over-approximate: no single concrete route
  // exists to build hold states from.
  EXPECT_FALSE(w.realizable);
  EXPECT_GE(w.instances.size(), 2u);
  EXPECT_GE(w.cycle.size(), 2u);
  ASSERT_EQ(w.edge_instance.size(), w.cycle.size());
  EXPECT_TRUE(analysis::relation_subset_deadlocks(rel, w.instances));
  for (std::size_t drop = 0; drop < w.instances.size(); ++drop) {
    std::vector<MulticastRequest> subset;
    for (std::size_t i = 0; i < w.instances.size(); ++i) {
      if (i != drop) subset.push_back(w.instances[i]);
    }
    EXPECT_FALSE(analysis::relation_subset_deadlocks(rel, subset))
        << "witness not 1-minimal: instance " << drop << " is redundant";
  }
}

// The escape-channel condition is strictly stronger than CDG acyclicity:
// minimal-adaptive routing with a dimension-order escape on a dedicated VC
// copy has a cyclic CDG (the adaptive copy admits every turn) yet
// certifies on meshes.  On the wraparound ring the escape itself cycles --
// the classic torus counterexample -- and a witness must come back.
TEST(Relation, EscapeConditionCertifiesBeyondAcyclicity) {
  const auto mesh = analysis::make_fixture("mesh:4x4");
  const RoutingRelation certified = analysis::make_relation(mesh, "min-adaptive-escape");
  EXPECT_TRUE(certified.claimed_deadlock_free);
  EXPECT_EQ(certified.channel_copies, 2);
  const RelationReport clean = analysis::analyze_relation(certified);
  EXPECT_FALSE(clean.cdg_acyclic);
  ASSERT_TRUE(clean.escape.checked);
  EXPECT_TRUE(clean.escape.certified());
  EXPECT_TRUE(clean.certified());
  EXPECT_FALSE(clean.witness.has_value());

  const auto ring = analysis::make_fixture("kary:4x2");
  const RoutingRelation wrap = analysis::make_relation(ring, "min-adaptive-escape");
  EXPECT_FALSE(wrap.claimed_deadlock_free);
  const RelationReport cyclic = analysis::analyze_relation(wrap);
  EXPECT_FALSE(cyclic.cdg_acyclic);
  ASSERT_TRUE(cyclic.escape.checked);
  EXPECT_TRUE(cyclic.escape.complete);
  EXPECT_FALSE(cyclic.escape.acyclic);
  EXPECT_FALSE(cyclic.certified());
  ASSERT_TRUE(cyclic.witness.has_value());
  EXPECT_FALSE(cyclic.witness->realizable);
}

// An escape subfunction that is undefined at reachable states must fail
// the completeness check with diagnosable messages, not certify.
TEST(Relation, IncompleteEscapeIsReported) {
  const auto fixture = analysis::make_fixture("mesh:4x4");
  RoutingRelation rel = analysis::make_relation(fixture, "min-adaptive");
  rel.escape = [](std::uint8_t, NodeId, NodeId) {
    return analysis::RelationHop{topo::kInvalidNode, 0};
  };
  const RelationReport report = analysis::analyze_relation(rel);
  ASSERT_TRUE(report.escape.checked);
  EXPECT_FALSE(report.escape.complete);
  EXPECT_FALSE(report.escape.certified());
  EXPECT_FALSE(report.certified());
  ASSERT_FALSE(report.escape.failures.empty());
  EXPECT_NE(report.escape.failures.front().find("escape undefined"), std::string::npos);
}

// The structured report must survive a serialise -> strict-parse round
// trip with verdict, counters, and witness intact.
TEST(Relation, ReportJsonRoundTrips) {
  const auto fixture = analysis::make_fixture("mesh:4x4");
  const RoutingRelation rel = analysis::make_relation(fixture, "min-adaptive");
  const RelationReport report = analysis::analyze_relation(rel);
  ASSERT_TRUE(report.witness.has_value());

  const obs::Json doc = analysis::relation_json(report, *fixture.topology);
  std::string error;
  const auto parsed = obs::Json::parse(doc.dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  EXPECT_EQ(parsed->find("instances_analyzed")->as_double(),
            static_cast<double>(report.instances_analyzed));
  EXPECT_EQ(parsed->find("dependencies")->as_double(), static_cast<double>(report.dependencies));
  EXPECT_EQ(parsed->find("stuck_states")->as_double(), 0.0);
  EXPECT_FALSE(parsed->find("cdg_acyclic")->as_bool());
  EXPECT_FALSE(parsed->find("certified")->as_bool());
  EXPECT_TRUE(parsed->find("escape")->is_null());

  const obs::Json* witness = parsed->find("witness");
  ASSERT_TRUE(witness != nullptr && witness->is_object());
  EXPECT_EQ(witness->find("instances")->size(), report.witness->instances.size());
  EXPECT_EQ(witness->find("cycle")->size(), report.witness->cycle.size());
  EXPECT_EQ(witness->find("edge_instance")->size(), report.witness->edge_instance.size());
  EXPECT_FALSE(witness->find("realizable")->as_bool());
  const obs::Json& first = witness->find("instances")->at(0);
  EXPECT_EQ(first.find("source")->as_double(),
            static_cast<double>(report.witness->instances[0].source));

  // Certified reports serialise the escape block instead of a witness.
  const auto adaptive =
      analysis::analyze_relation(analysis::make_relation(fixture, "adaptive-dual-path"));
  const obs::Json cert = analysis::relation_json(adaptive, *fixture.topology);
  const auto cert_parsed = obs::Json::parse(cert.dump(2), &error);
  ASSERT_TRUE(cert_parsed.has_value()) << error;
  EXPECT_TRUE(cert_parsed->find("certified")->as_bool());
  EXPECT_TRUE(cert_parsed->find("witness")->is_null());
  const obs::Json* escape = cert_parsed->find("escape");
  ASSERT_TRUE(escape != nullptr && escape->is_object());
  EXPECT_TRUE(escape->find("certified")->as_bool());
  EXPECT_EQ(escape->find("escape_channels")->as_double(),
            static_cast<double>(adaptive.escape.escape_channels));
}

}  // namespace
