#include <gtest/gtest.h>

#include "cdg/analyzers.hpp"
#include "core/baselines.hpp"
#include "core/multicast.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using mcast::PathRoute;
using mcast::TreeRoute;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;

TEST(MulticastRequest, Validation) {
  MulticastRequest ok{0, {1, 2, 3}};
  EXPECT_NO_THROW(ok.validate(16));

  MulticastRequest empty{0, {}};
  EXPECT_THROW(empty.validate(16), std::invalid_argument);

  MulticastRequest dup{0, {1, 1}};
  EXPECT_THROW(dup.validate(16), std::invalid_argument);

  MulticastRequest self{0, {0, 1}};
  EXPECT_THROW(self.validate(16), std::invalid_argument);

  MulticastRequest oob{0, {99}};
  EXPECT_THROW(oob.validate(16), std::invalid_argument);

  MulticastRequest src_oob{99, {1}};
  EXPECT_THROW(src_oob.validate(16), std::invalid_argument);
}

TEST(MulticastRequest, NormalizeFastPathIsZeroCopy) {
  mcast::RequestScratch scratch;
  MulticastRequest storage;

  // Clean request: normalize_into must hand back the input object itself
  // (the allocation-free fast path), and normalized() an equal copy.
  const MulticastRequest clean{0, {3, 1, 2}};
  EXPECT_TRUE(clean.is_normalized(16, scratch));
  const MulticastRequest& same = clean.normalize_into(16, scratch, storage);
  EXPECT_EQ(&same, &clean);
  EXPECT_EQ(clean.normalized(16), clean);

  // Duplicate destinations: the rebuild keeps first occurrences in order
  // and lands in `storage`, not in a fresh allocation per call.
  const MulticastRequest dup{0, {3, 1, 3, 2, 1}};
  EXPECT_FALSE(dup.is_normalized(16, scratch));
  const MulticastRequest& rebuilt = dup.normalize_into(16, scratch, storage);
  EXPECT_EQ(&rebuilt, &storage);
  EXPECT_EQ(rebuilt.destinations, (std::vector<NodeId>{3, 1, 2}));
  EXPECT_EQ(dup.normalized(16), rebuilt);

  // The error contract matches normalized(): same conditions, same type.
  const MulticastRequest self{0, {0, 1}};
  EXPECT_THROW((void)self.is_normalized(16, scratch), std::invalid_argument);
  EXPECT_THROW((void)self.normalize_into(16, scratch, storage), std::invalid_argument);
  const MulticastRequest oob{0, {99}};
  EXPECT_THROW((void)oob.normalize_into(16, scratch, storage), std::invalid_argument);
}

TEST(MulticastRoute, TrafficAndDepthMetrics) {
  MulticastRoute route;
  route.source = 0;
  PathRoute p;
  p.nodes = {0, 1, 2, 3};
  p.delivery_hops = {2, 3};
  route.paths.push_back(p);
  TreeRoute t;
  t.source = 0;
  const auto l0 = t.add_link(0, 4, -1);
  const auto l1 = t.add_link(4, 5, static_cast<std::int32_t>(l0));
  t.delivery_links = {l1};
  route.trees.push_back(t);

  EXPECT_EQ(route.traffic(), 5u);             // 3 path hops + 2 tree links
  EXPECT_EQ(route.additional_traffic(3), 2);  // 5 - 3 destinations
  EXPECT_EQ(route.max_delivery_hops(), 3u);   // path delivery at hop 3
  EXPECT_EQ(route.num_deliveries(), 3u);
}

TEST(MulticastRoute, TreeDepthFollowsParents) {
  TreeRoute t;
  t.source = 0;
  const auto a = t.add_link(0, 1, -1);
  const auto b = t.add_link(1, 2, static_cast<std::int32_t>(a));
  const auto c = t.add_link(2, 3, static_cast<std::int32_t>(b));
  EXPECT_EQ(t.links[a].depth, 1u);
  EXPECT_EQ(t.links[b].depth, 2u);
  EXPECT_EQ(t.links[c].depth, 3u);
}

TEST(VerifyRoute, AcceptsValidRejectsBroken) {
  const Mesh2D mesh(4, 4);
  const MulticastRequest req{0, {3, 5}};

  MulticastRoute good;
  good.source = 0;
  PathRoute p;
  p.nodes = {0, 1, 5, 6, 7, 3};  // 0->1 right, up to 5, right 6,7, up... (4x4 ids)
  // (0,0)=0 ->(1,0)=1 ->(1,1)=5 ->(2,1)=6 ->(3,1)=7 ->(3,0)=3
  p.delivery_hops = {2, 5};
  good.paths.push_back(p);
  EXPECT_NO_THROW(verify_route(mesh, req, good));

  MulticastRoute wrong_source = good;
  wrong_source.source = 1;
  EXPECT_THROW(verify_route(mesh, req, wrong_source), std::logic_error);

  MulticastRoute missing = good;
  missing.paths[0].delivery_hops = {2};  // node 3 never delivered
  EXPECT_THROW(verify_route(mesh, req, missing), std::logic_error);

  MulticastRoute twice = good;
  twice.paths[0].delivery_hops = {2, 5, 5};
  EXPECT_THROW(verify_route(mesh, req, twice), std::logic_error);

  MulticastRoute disjoint = good;
  disjoint.paths[0].nodes[2] = 9;  // 1 and 9 are not neighbours
  EXPECT_THROW(verify_route(mesh, req, disjoint), std::logic_error);
}

TEST(Baselines, MultiUnicastTrafficIsSumOfDistances) {
  const Mesh2D mesh(8, 8);
  const auto unicast = cdg::xfirst_routing(mesh);
  const MulticastRequest req{mesh.node(3, 3), {mesh.node(0, 0), mesh.node(7, 7), mesh.node(3, 5)}};
  const MulticastRoute route = multi_unicast_route(mesh, unicast, req);
  verify_route(mesh, req, route);
  std::uint64_t expected = 0;
  for (const NodeId d : req.destinations) expected += mesh.distance(req.source, d);
  EXPECT_EQ(route.traffic(), expected);
  EXPECT_EQ(route.paths.size(), 3u);
}

TEST(Baselines, BroadcastTrafficIsAlwaysNMinusOne) {
  const Mesh2D mesh(8, 8);
  const auto unicast = cdg::xfirst_routing(mesh);
  for (const std::size_t k : {1u, 5u, 20u}) {
    MulticastRequest req{0, {}};
    for (NodeId d = 1; d <= k; ++d) req.destinations.push_back(d);
    const MulticastRoute route = broadcast_route(mesh, unicast, req);
    verify_route(mesh, req, route);
    EXPECT_EQ(route.traffic(), mesh.num_nodes() - 1);
  }
}

TEST(Baselines, BroadcastTreeOnCubeIsSpanning) {
  const Hypercube cube(4);
  const auto unicast = cdg::ecube_routing(cube);
  const MulticastRequest req{5, {0, 15}};
  const MulticastRoute route = broadcast_route(cube, unicast, req);
  verify_route(cube, req, route);
  EXPECT_EQ(route.traffic(), cube.num_nodes() - 1);
  // Every node is reached exactly once (it is a tree).
  std::vector<int> seen(cube.num_nodes(), 0);
  seen[req.source] = 1;
  for (const auto& link : route.trees[0].links) ++seen[link.to];
  for (NodeId u = 0; u < cube.num_nodes(); ++u) EXPECT_EQ(seen[u], 1) << "node " << u;
}

TEST(Baselines, MultiUnicastDeliveryDepthEqualsDistance) {
  const Hypercube cube(5);
  const auto unicast = cdg::ecube_routing(cube);
  const MulticastRequest req{7, {0, 31, 12}};
  const MulticastRoute route = multi_unicast_route(cube, unicast, req);
  for (std::size_t i = 0; i < req.destinations.size(); ++i) {
    EXPECT_EQ(route.paths[i].hops(), cube.distance(req.source, req.destinations[i]));
  }
}

}  // namespace
