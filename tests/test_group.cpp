// GroupService: versioned membership views, ring-buffer sender windows,
// in-order delivery, and the heartbeat failure detector.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "evsim/scheduler.hpp"
#include "fault/fault_router.hpp"
#include "obs/metrics.hpp"
#include "service/group_service.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

struct Fixture {
  topo::Mesh2D mesh;
  std::shared_ptr<fault::FaultState> faults;
  std::unique_ptr<fault::FaultAwareRouter> router;
  evsim::Scheduler sched;
  svc::MulticastService service;

  explicit Fixture(std::uint32_t w, std::uint32_t h, worm::WormholeParams params = {})
      : mesh(w, h),
        faults(std::make_shared<fault::FaultState>(mesh)),
        router(fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults)),
        service(*router, params, sched) {}
};

TEST(GroupConfig, ValidationRejectsBadFields) {
  Fixture fx(2, 2);

  svc::GroupConfig c;
  c.window_size = 0;
  try {
    svc::GroupService bad(fx.service, c);
    FAIL() << "window_size=0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("window_size"), std::string::npos);
  }

  c = svc::GroupConfig{};
  c.heartbeat_period_s = 0.0;
  EXPECT_THROW(svc::GroupService(fx.service, c), std::invalid_argument);

  c = svc::GroupConfig{};
  c.sweep_period_s = -1e-6;
  EXPECT_THROW(svc::GroupService(fx.service, c), std::invalid_argument);

  // The suspicion floor may not undercut the heartbeat period.
  c = svc::GroupConfig{};
  c.suspicion_min_timeout_s = c.heartbeat_period_s / 2;
  EXPECT_THROW(svc::GroupService(fx.service, c), std::invalid_argument);

  c = svc::GroupConfig{};
  c.phi_threshold = 0.5;
  EXPECT_THROW(svc::GroupService(fx.service, c), std::invalid_argument);

  // A bad nested retry policy surfaces through the same validation.
  c = svc::GroupConfig{};
  c.retry.max_attempts = 0;
  EXPECT_THROW(svc::GroupService(fx.service, c), std::invalid_argument);
}

TEST(GroupService, RequiresFaultAwareService) {
  const topo::Mesh2D mesh(2, 2);
  const auto plain = mcast::make_router(mesh, Algorithm::kDualPath);
  evsim::Scheduler sched;
  svc::MulticastService service(*plain, worm::WormholeParams{}, sched);
  EXPECT_THROW(svc::GroupService groups(service), std::logic_error);
}

TEST(GroupService, CreateGroupInstallsViewOne) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);

  const auto gid = groups.create_group({10, 0, 5, 10});  // unsorted, with a dup
  const auto& v = groups.view(gid);
  EXPECT_EQ(v.id, 1u);
  EXPECT_EQ(v.members, (std::vector<topo::NodeId>{0, 5, 10}));
  EXPECT_EQ(v.coordinator(), 0u);
  EXPECT_TRUE(v.contains(5));
  EXPECT_FALSE(v.contains(3));
  EXPECT_EQ(groups.view_history(gid).size(), 1u);

  EXPECT_THROW(groups.create_group({}), std::invalid_argument);
  EXPECT_THROW(groups.create_group({0, 99}), std::invalid_argument);
  EXPECT_THROW(groups.view(999), std::invalid_argument);
}

TEST(GroupService, JoinLeaveInstallMonotoneViews) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);

  std::vector<std::pair<svc::ViewId, std::size_t>> seen;
  groups.on_view_change([&](svc::GroupId, const svc::MembershipView& v) {
    seen.emplace_back(v.id, v.members.size());
  });

  const auto gid = groups.create_group({0, 5});
  groups.join(gid, 10);
  EXPECT_EQ(groups.view(gid).id, 2u);
  EXPECT_TRUE(groups.view(gid).contains(10));
  EXPECT_THROW(groups.join(gid, 10), std::invalid_argument);
  EXPECT_THROW(groups.join(gid, 99), std::invalid_argument);

  groups.leave(gid, 5);
  EXPECT_EQ(groups.view(gid).id, 3u);
  EXPECT_FALSE(groups.view(gid).contains(5));
  EXPECT_THROW(groups.leave(gid, 5), std::invalid_argument);

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<svc::ViewId, std::size_t>{1u, 2u}));
  EXPECT_EQ(seen[1], (std::pair<svc::ViewId, std::size_t>{2u, 3u}));
  EXPECT_EQ(seen[2], (std::pair<svc::ViewId, std::size_t>{3u, 2u}));

  const auto& hist = groups.view_history(gid);
  ASSERT_EQ(hist.size(), 3u);
  for (std::size_t i = 1; i < hist.size(); ++i) {
    EXPECT_EQ(hist[i].id, hist[i - 1].id + 1);
    EXPECT_GE(hist[i].fault_epoch, hist[i - 1].fault_epoch);
  }

  EXPECT_EQ(groups.stats().joins, 1u);
  EXPECT_EQ(groups.stats().leaves, 1u);
  EXPECT_EQ(groups.stats().view_installs, 3u);
}

TEST(GroupService, SendDeliversInViewAndInOrder) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});

  // (receiver, sender, seq) in callback order; per (receiver, sender) the
  // seqs must come out 0, 1, 2, ... regardless of network reordering.
  std::vector<std::tuple<topo::NodeId, topo::NodeId, svc::SeqNum>> app;
  groups.on_app_delivery([&](svc::GroupId, topo::NodeId recv, topo::NodeId snd,
                             svc::SeqNum seq, svc::ViewId) {
    app.emplace_back(recv, snd, seq);
  });

  constexpr int kSends = 6;
  int reports = 0;
  for (int i = 0; i < kSends; ++i) {
    const auto seq = groups.send(gid, 0, [&](const svc::GroupSendReport& r) {
      ++reports;
      EXPECT_EQ(r.view, 1u);
      EXPECT_TRUE(r.stable_in_view);
      EXPECT_EQ(r.destinations.size(), 3u);
      EXPECT_EQ(r.delivered_in_view(), 3u);
      for (const auto& d : r.destinations) EXPECT_GT(d.latency_s, 0.0);
    });
    EXPECT_EQ(seq, static_cast<svc::SeqNum>(i));
  }
  fx.sched.schedule_at(2e-3, [&] { groups.stop(); });
  fx.sched.run();

  EXPECT_EQ(reports, kSends);
  EXPECT_EQ(app.size(), static_cast<std::size_t>(kSends) * 3u);
  std::map<topo::NodeId, svc::SeqNum> next;
  for (const auto& [recv, snd, seq] : app) {
    EXPECT_EQ(snd, 0u);
    EXPECT_EQ(seq, next[recv]) << "out-of-order delivery at node " << recv;
    next[recv] = seq + 1;
  }
  EXPECT_EQ(groups.stats().delivered_in_view, static_cast<std::size_t>(kSends) * 3u);
  EXPECT_EQ(groups.stats().dropped, 0u);
  EXPECT_TRUE(fx.service.network().idle());
}

TEST(GroupService, SingletonGroupSendIsTriviallyStable) {
  Fixture fx(2, 2);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({3});
  bool reported = false;
  groups.send(gid, 3, [&](const svc::GroupSendReport& r) {
    reported = true;
    EXPECT_TRUE(r.stable_in_view);
    EXPECT_TRUE(r.destinations.empty());
  });
  EXPECT_TRUE(reported);  // no destinations: stable synchronously
  EXPECT_THROW(groups.send(gid, 0, {}), std::invalid_argument);  // non-member
}

TEST(GroupService, WindowStallsAtCapacityAndDrains) {
  Fixture fx(4, 4);
  svc::GroupConfig cfg;
  cfg.window_size = 2;
  svc::GroupService groups(fx.service, cfg);
  obs::MetricsRegistry reg;
  groups.set_metrics(&reg);

  const auto gid = groups.create_group({0, 5, 10});
  int reports = 0;
  constexpr int kSends = 6;
  for (int i = 0; i < kSends; ++i) {
    groups.send(gid, 0, [&](const svc::GroupSendReport&) { ++reports; });
  }
  // Two slots in flight, the rest queued; the sender counts as stalled.
  EXPECT_EQ(groups.in_flight(gid, 0), 2u);
  EXPECT_EQ(groups.queued(gid, 0), 4u);
  EXPECT_EQ(groups.stalled_senders(), 1u);
  EXPECT_EQ(groups.stats().window_stalls, 4u);
  EXPECT_EQ(reg.counter("group.window_stalls").value(), 4u);
  EXPECT_EQ(reg.gauge("group.window_stalled").value(), 1.0);

  fx.sched.schedule_at(2e-3, [&] { groups.stop(); });
  fx.sched.run();

  EXPECT_EQ(reports, kSends);
  EXPECT_EQ(groups.in_flight(gid, 0), 0u);
  EXPECT_EQ(groups.queued(gid, 0), 0u);
  EXPECT_EQ(groups.stalled_senders(), 0u);
  EXPECT_EQ(reg.gauge("group.window_stalled").value(), 0.0);
  EXPECT_EQ(reg.counter("group.sends").value(), static_cast<std::uint64_t>(kSends));
  EXPECT_GT(reg.histogram("group.stability_latency_s").count(), 0u);
}

TEST(GroupService, DetectorEvictsCrashedMember) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 1, 2, 3, 5});

  fx.sched.schedule_at(200e-6, [&] { fx.service.network().fail_node(5); });
  fx.sched.schedule_at(5e-3, [&] { groups.stop(); });
  fx.sched.run();

  const auto& v = groups.view(gid);
  EXPECT_EQ(v.id, 2u);
  EXPECT_FALSE(v.contains(5));
  EXPECT_EQ(v.members.size(), 4u);
  EXPECT_EQ(groups.stats().evictions, 1u);
  EXPECT_EQ(groups.stats().false_positive_evictions, 0u);
  EXPECT_GE(groups.stats().suspicions, 3u);  // majority of the 4 survivors
  // The eviction view carries the post-crash fault epoch.
  EXPECT_GT(groups.view_history(gid).back().fault_epoch,
            groups.view_history(gid).front().fault_epoch);
  // Eviction happened after the suspicion floor, not instantly.
  EXPECT_GT(v.installed_at_s, 200e-6);
}

TEST(GroupService, IsolatedLiveMemberCountsAsFalsePositive) {
  Fixture fx(3, 3);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 4, 8});

  // Cut every link of corner 8: the node is alive but mute, so its
  // eviction is (by ground truth) a false positive.
  fx.sched.schedule_at(100e-6, [&] {
    for (const topo::NodeId v : fx.mesh.neighbors(8)) {
      fx.service.network().fail_channel(fx.mesh.channel(8, v));
      fx.service.network().fail_channel(fx.mesh.channel(v, 8));
    }
  });
  fx.sched.schedule_at(5e-3, [&] { groups.stop(); });
  fx.sched.run();

  EXPECT_FALSE(groups.view(gid).contains(8));
  EXPECT_EQ(groups.stats().evictions, 1u);
  EXPECT_EQ(groups.stats().false_positive_evictions, 1u);
}

TEST(GroupService, DeadDestinationResolvesUnreachableBeforeEviction) {
  // A crashed node is *unreachable* at routing time, so the message
  // stabilises long before the detector evicts it -- and because the dead
  // node is still a member at stability time, stability is not in-view.
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10});
  fx.service.network().fail_node(10);

  svc::GroupSendReport report;
  bool reported = false;
  groups.send(gid, 0, [&](const svc::GroupSendReport& r) {
    report = r;
    reported = true;
  });
  fx.sched.schedule_at(5e-3, [&] { groups.stop(); });
  fx.sched.run();

  ASSERT_TRUE(reported);
  ASSERT_EQ(report.destinations.size(), 2u);
  EXPECT_EQ(report.destinations[0].outcome, svc::GroupOutcome::kDeliveredInView);
  EXPECT_EQ(report.destinations[1].node, 10u);
  EXPECT_EQ(report.destinations[1].outcome, svc::GroupOutcome::kUnreachable);
  EXPECT_FALSE(report.stable_in_view);  // node 10 was still a member then
  EXPECT_FALSE(groups.view(gid).contains(10));  // ... and got evicted later
}

TEST(GroupService, EvictionReleasesBlockedWindow) {
  // Two nodes, one link each way, both buried under bulk traffic for over
  // a millisecond: heartbeats and group sends all time out, so each
  // member evicts the other (silence, not death).  The eviction must make
  // the blocked messages stable and clear the stall -- far sooner than
  // the 16-attempt retry budget (~8ms) could.
  worm::WormholeParams params;
  params.message_flits = 4000;  // ~200us channel occupancy per message
  Fixture fx(2, 1, params);
  svc::GroupConfig cfg;
  cfg.window_size = 1;
  cfg.retry.max_attempts = 16;
  cfg.retry.timeout_s = 500e-6;
  svc::GroupService groups(fx.service, cfg);
  const auto gid = groups.create_group({0, 1});
  for (int i = 0; i < 6; ++i) {
    fx.service.multicast({0, {1}});
    fx.service.multicast({1, {0}});
  }

  std::vector<svc::GroupSendReport> reports;
  groups.send(gid, 0, [&](const svc::GroupSendReport& r) { reports.push_back(r); });
  groups.send(gid, 0, [&](const svc::GroupSendReport& r) { reports.push_back(r); });
  EXPECT_EQ(groups.in_flight(gid, 0), 1u);
  EXPECT_EQ(groups.queued(gid, 0), 1u);
  EXPECT_EQ(groups.stalled_senders(), 1u);

  fx.sched.schedule_at(20e-3, [&] { groups.stop(); });
  fx.sched.run();

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_GE(groups.stats().evictions, 1u);
  EXPECT_GE(groups.stats().false_positive_evictions, 1u);  // nobody died
  EXPECT_EQ(groups.stalled_senders(), 0u);
  EXPECT_EQ(groups.queued(gid, 0), 0u);
  EXPECT_EQ(groups.in_flight(gid, 0), 0u);
  // The first send was in flight toward the (now evicted) peer; the
  // queued one launched only after the view emptied, so it owes nobody.
  ASSERT_EQ(reports[0].destinations.size(), 1u);
  EXPECT_NE(reports[0].destinations[0].outcome, svc::GroupOutcome::kDeliveredInView);
  EXPECT_TRUE(reports[1].destinations.empty());
  for (const auto& r : reports) {
    // Stability came from the eviction, not from draining the retry
    // budget (16 attempts x ~500us would run past 8ms).
    EXPECT_LT(r.stable_at_s, 2e-3);
  }
}

// One deterministic scenario: create, send under load, crash, evict,
// rejoin after recovery.  The digest must replay exactly.
std::vector<std::tuple<svc::ViewId, std::size_t, std::uint64_t>> run_scenario() {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 1, 2, 3});
  for (int i = 0; i < 8; ++i) {
    fx.sched.schedule_at(static_cast<double>(i) * 40e-6,
                         [&groups, gid, i] { groups.send(gid, i % 2 == 0 ? 0 : 1, {}); });
  }
  fx.sched.schedule_at(150e-6, [&] { fx.service.network().fail_node(3); });
  fx.sched.schedule_at(2e-3, [&] { fx.service.network().recover_node(3); });
  fx.sched.schedule_at(2.2e-3, [&groups, gid] {
    if (!groups.view(gid).contains(3)) groups.join(gid, 3);
  });
  fx.sched.schedule_at(5e-3, [&] { groups.stop(); });
  fx.sched.run();

  std::vector<std::tuple<svc::ViewId, std::size_t, std::uint64_t>> digest;
  for (const auto& v : groups.view_history(gid)) {
    digest.emplace_back(v.id, v.members.size(), v.fault_epoch);
  }
  digest.emplace_back(0, groups.stats().delivered_in_view, groups.stats().evictions);
  return digest;
}

TEST(GroupService, ScenarioReplaysDeterministically) {
  const auto a = run_scenario();
  const auto b = run_scenario();
  EXPECT_EQ(a, b);
  EXPECT_GE(a.size(), 3u);  // view 1, the eviction, the rejoin
}

TEST(GroupService, SendToSubsetDeliversOnlyToTargetsAndPlugsHoles) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10, 15});

  // receiver -> sequence numbers surfaced, in order.
  std::map<topo::NodeId, std::vector<svc::SeqNum>> seen;
  groups.on_app_delivery([&](svc::GroupId, topo::NodeId recv, topo::NodeId,
                             svc::SeqNum seq, svc::ViewId) {
    seen[recv].push_back(seq);
  });

  svc::GroupSendReport subset_report;
  bool reported = false;
  const auto s0 = groups.send_to(gid, 0, {5}, [&](const svc::GroupSendReport& r) {
    subset_report = r;
    reported = true;
  });
  const auto s1 = groups.send(gid, 0);  // whole group
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);

  fx.sched.schedule_at(5e-3, [&] { groups.stop(); });
  fx.sched.run();

  // The subset send reports exactly its target.
  ASSERT_TRUE(reported);
  ASSERT_EQ(subset_report.destinations.size(), 1u);
  EXPECT_EQ(subset_report.destinations[0].node, 5u);
  EXPECT_EQ(subset_report.destinations[0].outcome, svc::GroupOutcome::kDeliveredInView);
  EXPECT_TRUE(subset_report.stable_in_view);

  // The target saw both sequences in order; non-targets saw seq 0 as a
  // plugged hole and surfaced seq 1 without wedging behind it.
  EXPECT_EQ(seen[5], (std::vector<svc::SeqNum>{0, 1}));
  EXPECT_EQ(seen[10], (std::vector<svc::SeqNum>{1}));
  EXPECT_EQ(seen[15], (std::vector<svc::SeqNum>{1}));
}

TEST(GroupService, SendToValidatesDestinations) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10});

  EXPECT_THROW(groups.send_to(gid, 0, {}), std::invalid_argument);
  EXPECT_THROW(groups.send_to(gid, 0, {0}), std::invalid_argument);    // self
  EXPECT_THROW(groups.send_to(gid, 0, {7}), std::invalid_argument);    // non-member
  EXPECT_THROW(groups.send_to(gid, 7, {5}), std::invalid_argument);    // bad sender
  EXPECT_THROW(groups.send_to(gid, 0, {5, 7}), std::invalid_argument); // mixed

  // Duplicates dedupe to a single destination.
  svc::GroupSendReport report;
  groups.send_to(gid, 0, {5, 5, 5}, [&](const svc::GroupSendReport& r) { report = r; });
  fx.sched.schedule_at(5e-3, [&] { groups.stop(); });
  fx.sched.run();
  EXPECT_EQ(report.destinations.size(), 1u);
}

TEST(GroupService, JoinerInFlightSendsSurviveRejoin) {
  // Regression: node 5 launches sends, then leaves and rejoins while they
  // are still in flight.  Its messages still owe the continuous members,
  // so their streams must keep surfacing them -- the pre-fix joiner reset
  // clobbered every {peer, joiner} stream to the joiner's next_seq and
  // silently discarded all three.
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10});

  std::map<topo::NodeId, std::vector<svc::SeqNum>> from5;
  groups.on_app_delivery([&](svc::GroupId, topo::NodeId recv, topo::NodeId snd,
                             svc::SeqNum seq, svc::ViewId) {
    if (snd == 5) from5[recv].push_back(seq);
  });

  for (int i = 0; i < 3; ++i) groups.send(gid, 5);
  groups.leave(gid, 5);
  groups.join(gid, 5);
  groups.send(gid, 5);  // post-rejoin send continues the same stream

  fx.sched.schedule_at(10e-3, [&] { groups.stop(); });
  fx.sched.run();

  EXPECT_EQ(from5[0], (std::vector<svc::SeqNum>{0, 1, 2, 3}));
  EXPECT_EQ(from5[10], (std::vector<svc::SeqNum>{0, 1, 2, 3}));
  EXPECT_EQ(groups.in_flight(gid, 5), 0u);
}

TEST(GroupService, JoinerResetIsReentrantAcrossConsecutiveInstalls) {
  // The same node joining in two consecutive view installs (evict + rejoin
  // before hearing any sequence) must behave exactly like a single join.
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);
  const auto gid = groups.create_group({0, 5, 10});

  std::map<topo::NodeId, std::vector<svc::SeqNum>> from5;
  groups.on_app_delivery([&](svc::GroupId, topo::NodeId recv, topo::NodeId snd,
                             svc::SeqNum seq, svc::ViewId) {
    if (snd == 5) from5[recv].push_back(seq);
  });

  for (int i = 0; i < 3; ++i) groups.send(gid, 5);
  groups.leave(gid, 5);
  groups.join(gid, 5);
  groups.leave(gid, 5);  // second churn round before anything delivered
  groups.join(gid, 5);
  groups.send(gid, 5);

  fx.sched.schedule_at(10e-3, [&] { groups.stop(); });
  fx.sched.run();

  EXPECT_EQ(groups.view(gid).id, 5u);  // create + 4 installs
  EXPECT_EQ(from5[0], (std::vector<svc::SeqNum>{0, 1, 2, 3}));
  EXPECT_EQ(from5[10], (std::vector<svc::SeqNum>{0, 1, 2, 3}));
  EXPECT_EQ(groups.stalled_senders(), 0u);
}

TEST(GroupService, DeliveryAndViewSettledHooksFireAndRemove) {
  Fixture fx(4, 4);
  svc::GroupService groups(fx.service);

  std::uint64_t app_count = 0;
  groups.on_app_delivery(
      [&](svc::GroupId, topo::NodeId, topo::NodeId, svc::SeqNum, svc::ViewId) {
        ++app_count;
      });
  svc::ViewId last_change_view = 0;
  groups.on_view_change(
      [&](svc::GroupId, const svc::MembershipView& v) { last_change_view = v.id; });

  std::uint64_t hook_deliveries = 0;
  const auto dh = groups.add_delivery_hook(
      [&](svc::GroupId, topo::NodeId, topo::NodeId, svc::SeqNum, svc::ViewId) {
        ++hook_deliveries;
      });
  std::vector<svc::ViewId> settled;
  const auto vh = groups.add_view_settled_hook(
      [&](svc::GroupId, const svc::MembershipView& v) {
        // Settles strictly after the view-change callback for the same view.
        EXPECT_EQ(last_change_view, v.id);
        settled.push_back(v.id);
      });

  const auto gid = groups.create_group({0, 5, 10});
  groups.send(gid, 0);
  groups.join(gid, 15);
  fx.sched.schedule_at(5e-3, [&] { groups.stop(); });
  fx.sched.run();

  EXPECT_EQ(settled, (std::vector<svc::ViewId>{1, 2}));
  EXPECT_GT(hook_deliveries, 0u);
  EXPECT_EQ(hook_deliveries, app_count);  // hooks mirror every in-order delivery

  // Removed hooks go quiet; the application callbacks keep firing.
  groups.remove_delivery_hook(dh);
  groups.remove_view_settled_hook(vh);
  const std::uint64_t hook_before = hook_deliveries;
  const std::uint64_t app_before = app_count;
  evsim::Scheduler& sched = fx.sched;
  groups.send(gid, 5);
  groups.leave(gid, 15);
  sched.schedule_at(sched.now() + 5e-3, [&] { groups.stop(); });
  fx.sched.run();
  EXPECT_EQ(hook_deliveries, hook_before);
  EXPECT_EQ(settled.size(), 2u);
  EXPECT_GT(app_count, app_before);
}

TEST(GroupService, ManyGroupsScaleWithFlatStorage) {
  // Scaling regression for the flat per-group storage: thousands of
  // concurrent groups, one send each, must create, deliver, and drain
  // their windows without detector interference.
  Fixture fx(16, 16);
  svc::GroupConfig cfg;
  cfg.heartbeat_period_s = 10e-3;
  cfg.sweep_period_s = 10e-3;
  cfg.suspicion_min_timeout_s = 200e-3;  // unreachable within the run
  svc::GroupService groups(fx.service, cfg);

  constexpr std::uint32_t kGroups = 1600;
  std::vector<svc::GroupId> gids;
  gids.reserve(kGroups);
  std::vector<topo::NodeId> bases;
  for (std::uint32_t i = 0; i < kGroups; ++i) {
    const auto base = static_cast<topo::NodeId>((7 * i) % 253);
    bases.push_back(base);
    gids.push_back(groups.create_group({base, base + 1, base + 2}));
  }
  EXPECT_EQ(groups.num_groups(), kGroups);

  // Stagger one send per group so the mesh is loaded but not saturated.
  for (std::uint32_t i = 0; i < kGroups; ++i) {
    fx.sched.schedule_at(1e-6 * i, [&groups, gid = gids[i], base = bases[i]] {
      groups.send(gid, base);
    });
  }
  fx.sched.schedule_at(8e-3, [&] { groups.stop(); });
  fx.sched.run();

  EXPECT_EQ(groups.stats().sends, kGroups);
  EXPECT_GT(groups.stats().delivered_in_view, 0u);
  EXPECT_EQ(groups.stats().evictions, 0u);  // detector stayed quiet
  EXPECT_EQ(groups.stalled_senders(), 0u);
  for (std::uint32_t i = 0; i < kGroups; i += 97) {
    EXPECT_EQ(groups.view(gids[i]).id, 1u);
    EXPECT_EQ(groups.in_flight(gids[i], bases[i]), 0u);
    EXPECT_EQ(groups.queued(gids[i], bases[i]), 0u);
  }
}

}  // namespace
