// TrafficDriver: per-node multicast generators (Section 7.2 workload).
#include <gtest/gtest.h>

#include <set>

#include "core/dual_path.hpp"
#include "core/route_cache.hpp"
#include "evsim/scheduler.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/traffic.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using topo::Mesh2D;
using topo::NodeId;

struct Fixture {
  Mesh2D mesh{4, 4};
  ham::MeshBoustrophedonLabeling lab{mesh};
  evsim::Scheduler sched;
  worm::Network net{mesh, {.flit_time = 1e-7, .message_flits = 8, .channel_copies = 1},
                    sched};

  worm::RouteBuilder builder(std::vector<std::pair<NodeId, std::size_t>>* log = nullptr) {
    return [this, log](NodeId src, const std::vector<NodeId>& dests) {
      if (log) log->emplace_back(src, dests.size());
      return worm::make_worm_specs(
          mesh, mcast::dual_path_route(mesh, lab, mcast::MulticastRequest{src, dests}), 1);
    };
  }
};

TEST(TrafficDriver, EveryNodeGenerates) {
  Fixture f;
  std::vector<std::pair<NodeId, std::size_t>> log;
  worm::TrafficDriver driver(f.sched, f.net,
                             {.mean_interarrival_s = 1e-3,
                              .avg_destinations = 3,
                              .fixed_destinations = false,
                              .exponential_interarrival = false,
                              .seed = 5},
                             f.builder(&log));
  driver.start();
  f.sched.run_until(20e-3);
  driver.stop();
  f.sched.run();
  std::set<NodeId> sources;
  for (const auto& [src, k] : log) sources.insert(src);
  EXPECT_EQ(sources.size(), f.mesh.num_nodes()) << "every node must generate";
  EXPECT_TRUE(f.net.idle());
}

TEST(TrafficDriver, FixedDestinationCountIsExact) {
  Fixture f;
  std::vector<std::pair<NodeId, std::size_t>> log;
  worm::TrafficDriver driver(f.sched, f.net,
                             {.mean_interarrival_s = 1e-3,
                              .avg_destinations = 7,
                              .fixed_destinations = true,
                              .exponential_interarrival = false,
                              .seed = 6},
                             f.builder(&log));
  driver.start();
  f.sched.run_until(10e-3);
  driver.stop();
  f.sched.run();
  ASSERT_FALSE(log.empty());
  for (const auto& [src, k] : log) EXPECT_EQ(k, 7u);
}

TEST(TrafficDriver, VariableDestinationCountHasRequestedMean) {
  Fixture f;
  std::vector<std::pair<NodeId, std::size_t>> log;
  worm::TrafficDriver driver(f.sched, f.net,
                             {.mean_interarrival_s = 0.2e-3,
                              .avg_destinations = 5,
                              .fixed_destinations = false,
                              .exponential_interarrival = false,
                              .seed = 7},
                             f.builder(&log));
  driver.start();
  f.sched.run_until(200e-3);
  driver.stop();
  f.sched.run();
  ASSERT_GT(log.size(), 2000u);
  double total = 0.0;
  std::size_t lo = 99, hi = 0;
  for (const auto& [src, k] : log) {
    total += static_cast<double>(k);
    lo = std::min(lo, k);
    hi = std::max(hi, k);
  }
  EXPECT_NEAR(total / static_cast<double>(log.size()), 5.0, 0.25);
  EXPECT_EQ(lo, 1u);   // uniform over [1, 2*avg - 1]
  EXPECT_EQ(hi, 9u);
}

TEST(TrafficDriver, StopHaltsGeneration) {
  Fixture f;
  std::vector<std::pair<NodeId, std::size_t>> log;
  worm::TrafficDriver driver(f.sched, f.net,
                             {.mean_interarrival_s = 1e-3,
                              .avg_destinations = 2,
                              .fixed_destinations = true,
                              .exponential_interarrival = false,
                              .seed = 8},
                             f.builder(&log));
  driver.start();
  f.sched.run_until(5e-3);
  driver.stop();
  const std::size_t at_stop = log.size();
  f.sched.run();
  EXPECT_EQ(log.size(), at_stop) << "no new messages after stop";
  EXPECT_TRUE(f.net.idle()) << "in-flight worms drain after stop";
}

TEST(TrafficDriver, RouteBatchPrefetchGeneratesEverywhereDeterministically) {
  const topo::Mesh2D mesh(4, 4);
  const auto router = mcast::make_caching_router(mesh, mcast::Algorithm::kDualPath);
  const worm::TrafficConfig cfg{.mean_interarrival_s = 1e-3,
                                .avg_destinations = 3,
                                .fixed_destinations = false,
                                .exponential_interarrival = false,
                                .seed = 5,
                                .route_batch = 4};

  const auto run_once = [&] {
    evsim::Scheduler sched;
    worm::Network net(mesh, {.flit_time = 1e-7, .message_flits = 8, .channel_copies = 1},
                      sched);
    worm::TrafficDriver driver(sched, net, cfg, *router);
    driver.start();
    sched.run_until(20e-3);
    driver.stop();
    sched.run();
    EXPECT_TRUE(net.idle());
    return net.messages_completed();
  };
  const std::uint64_t first = run_once();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(run_once(), first) << "prefetched batches must be seed-deterministic";

  // Every node keeps generating under prefetch (the queue is per node).
  {
    evsim::Scheduler sched;
    worm::Network net(mesh, {.flit_time = 1e-7, .message_flits = 8, .channel_copies = 1},
                      sched);
    worm::TrafficDriver driver(sched, net, cfg, *router);
    driver.start();
    sched.run_until(40e-3);
    driver.stop();
    sched.run();
    EXPECT_GE(net.messages_injected(), mesh.num_nodes() * 4u);
  }

  // route_batch = 0 is a config error, not a silent fallback.
  evsim::Scheduler sched;
  worm::Network net(mesh, {.flit_time = 1e-7, .message_flits = 8, .channel_copies = 1},
                    sched);
  worm::TrafficConfig bad = cfg;
  bad.route_batch = 0;
  EXPECT_THROW(worm::TrafficDriver(sched, net, bad, *router), std::invalid_argument);
}

TEST(TrafficDriver, ExponentialModeRunsAndDiffersFromUniform) {
  Fixture f;
  std::vector<std::pair<NodeId, std::size_t>> log;
  worm::TrafficDriver driver(f.sched, f.net,
                             {.mean_interarrival_s = 1e-3,
                              .avg_destinations = 3,
                              .fixed_destinations = true,
                              .exponential_interarrival = true,
                              .seed = 9},
                             f.builder(&log));
  driver.start();
  f.sched.run_until(50e-3);
  driver.stop();
  f.sched.run();
  // ~16 nodes * 50 arrivals each expected; allow wide slack.
  EXPECT_GT(log.size(), 400u);
  EXPECT_LT(log.size(), 1300u);
}

}  // namespace
