// Simulator audit: channel-level trace invariants under randomized stress.
// The wormhole engine must behave like real hardware -- at most one worm
// per physical channel copy at any instant, strictly positive hold times,
// exact busy-time accounting, and the documented per-link hold duration in
// the contention-free case.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/dc_xfirst_tree.hpp"
#include "core/dual_path.hpp"
#include "core/multi_path.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/network.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using topo::Mesh2D;
using topo::NodeId;

struct ChannelTrace {
  struct Hold {
    std::uint32_t worm;
    double t_acquire = -1.0;
    double t_release = -1.0;
  };
  std::map<std::pair<topo::ChannelId, std::uint8_t>, std::vector<Hold>> holds;

  worm::NetworkHooks attach(worm::NetworkHooks hooks = {}) {
    hooks.on_channel_grant = [this](topo::ChannelId c, std::uint8_t k, std::uint32_t w,
                                    double t) {
      auto& v = holds[{c, k}];
      if (!v.empty()) {
        ASSERT_GE(v.back().t_release, 0.0) << "grant while channel still held";
      }
      v.push_back({w, t, -1.0});
    };
    hooks.on_channel_release = [this](topo::ChannelId c, std::uint8_t k, std::uint32_t w,
                                      double t) {
      auto& v = holds[{c, k}];
      ASSERT_FALSE(v.empty());
      ASSERT_EQ(v.back().worm, w) << "release by non-holder";
      ASSERT_LT(v.back().t_release, 0.0) << "double release";
      v.back().t_release = t;
    };
    return hooks;
  }

  void expect_consistent(double busy_time_reported) const {
    double total = 0.0;
    for (const auto& [key, v] : holds) {
      double prev_release = -1.0;
      for (const auto& h : v) {
        EXPECT_GE(h.t_release, h.t_acquire) << "negative hold";
        EXPECT_GT(h.t_release, 0.0) << "unreleased hold at end of run";
        // Non-overlap: each hold starts at or after the previous release.
        EXPECT_GE(h.t_acquire, prev_release) << "overlapping holds on one copy";
        prev_release = h.t_release;
        total += h.t_release - h.t_acquire;
      }
    }
    EXPECT_NEAR(total, busy_time_reported, 1e-9) << "busy-time accounting drift";
  }
};

TEST(NetworkAudit, UncontendedHoldDurationIsLPlusOneFlits) {
  // A single worm holds the link at depth d from (d-1) tau (acquisition)
  // to (d+L) tau (tail passed): L+1 flit times per link.
  const Mesh2D mesh(5, 1);
  evsim::Scheduler sched;
  worm::Network net(mesh, {.flit_time = 1.0, .message_flits = 6, .channel_copies = 1},
                    sched);
  ChannelTrace trace;
  net.set_hooks(trace.attach());
  mcast::MulticastRoute route;
  route.source = 0;
  mcast::PathRoute p;
  p.nodes = {0, 1, 2, 3, 4};
  p.delivery_hops = {4};
  route.paths.push_back(p);
  net.inject(worm::make_worm_specs(mesh, route, 1));
  sched.run();
  ASSERT_EQ(trace.holds.size(), 4u);
  for (const auto& [key, v] : trace.holds) {
    ASSERT_EQ(v.size(), 1u);
    EXPECT_DOUBLE_EQ(v[0].t_release - v[0].t_acquire, 7.0);  // L + 1
  }
  trace.expect_consistent(net.channel_busy_time());
}

TEST(NetworkAudit, RandomStressSingleChannel) {
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Scheduler sched;
  worm::Network net(mesh, {.flit_time = 1.0, .message_flits = 12, .channel_copies = 1},
                    sched);
  ChannelTrace trace;
  net.set_hooks(trace.attach());
  evsim::Rng rng(601);
  for (int i = 0; i < 150; ++i) {
    sched.schedule_at(rng.uniform(0.0, 400.0), [&net, &mesh, &lab, &rng] {
      const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
      const std::uint32_t k = rng.uniform_int(1, 10);
      const mcast::MulticastRequest req{src,
                                        rng.sample_destinations(mesh.num_nodes(), src, k)};
      net.inject(worm::make_worm_specs(mesh, dual_path_route(mesh, lab, req), 1));
    });
  }
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.messages_completed(), 150u);
  trace.expect_consistent(net.channel_busy_time());
  EXPECT_GT(net.channel_busy_time(), 0.0);
}

TEST(NetworkAudit, RandomStressDoubleChannelMixedAlgorithms) {
  const Mesh2D mesh(6, 6);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Scheduler sched;
  worm::Network net(mesh, {.flit_time = 1.0, .message_flits = 8, .channel_copies = 2},
                    sched);
  ChannelTrace trace;
  net.set_hooks(trace.attach());
  evsim::Rng rng(607);
  for (int i = 0; i < 120; ++i) {
    sched.schedule_at(rng.uniform(0.0, 300.0), [&net, &mesh, &lab, &rng, i] {
      const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
      const std::uint32_t k = rng.uniform_int(1, 8);
      const mcast::MulticastRequest req{src,
                                        rng.sample_destinations(mesh.num_nodes(), src, k)};
      const mcast::MulticastRoute route = (i % 3 == 0)
                                              ? mcast::dc_xfirst_tree_route(mesh, req)
                                              : (i % 3 == 1)
                                                    ? dual_path_route(mesh, lab, req)
                                                    : multi_path_route(mesh, lab, req);
      net.inject(worm::make_worm_specs(mesh, route, 2));
    });
  }
  sched.run();
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.messages_completed(), 120u);
  trace.expect_consistent(net.channel_busy_time());
}

TEST(NetworkAudit, UtilizationIsBoundedAndPositiveUnderLoad) {
  const Mesh2D mesh(4, 4);
  const ham::MeshBoustrophedonLabeling lab(mesh);
  evsim::Scheduler sched;
  worm::Network net(mesh, {.flit_time = 1.0, .message_flits = 16, .channel_copies = 1},
                    sched);
  evsim::Rng rng(613);
  for (int i = 0; i < 40; ++i) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const mcast::MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, 5)};
    net.inject(worm::make_worm_specs(mesh, dual_path_route(mesh, lab, req), 1));
  }
  sched.run();
  const double u = net.utilization();
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
}

}  // namespace
