// Bench harness (bench/bench_common.hpp): run-count scaling must survive
// hostile MCNET_BENCH_SCALE values (the double -> uint32_t cast used to be
// UB for huge scales), and the JsonReporter must emit schema-valid
// documents.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "bench_common.hpp"

namespace {

using namespace mcnet;

/// RAII environment override (tests run serially within a binary).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(BenchScale, DefaultsToOneAndParsesOverrides) {
  {
    ScopedEnv env("MCNET_BENCH_SCALE", nullptr);
    EXPECT_DOUBLE_EQ(bench::bench_scale(), 1.0);
  }
  {
    ScopedEnv env("MCNET_BENCH_SCALE", "0.25");
    EXPECT_DOUBLE_EQ(bench::bench_scale(), 0.25);
  }
}

TEST(BenchScale, RejectsNonFiniteAndNonPositiveValues) {
  for (const char* bad : {"nan", "inf", "-inf", "0", "-3", "bogus", ""}) {
    ScopedEnv env("MCNET_BENCH_SCALE", bad);
    EXPECT_DOUBLE_EQ(bench::bench_scale(), 1.0) << bad;
  }
}

TEST(ScaledRuns, ClampsInsteadOfOverflowing) {
  {
    // 1000 * 1e30 would previously hit the UB double -> uint32_t cast.
    ScopedEnv env("MCNET_BENCH_SCALE", "1e30");
    EXPECT_EQ(bench::scaled_runs(1000), std::numeric_limits<std::uint32_t>::max());
    EXPECT_EQ(bench::scaled_count(1000), std::numeric_limits<std::uint64_t>::max());
  }
  {
    ScopedEnv env("MCNET_BENCH_SCALE", "1e-12");
    EXPECT_EQ(bench::scaled_runs(1000), 8u);  // floor keeps statistics sane
    EXPECT_EQ(bench::scaled_count(1000), 1u);
  }
  {
    ScopedEnv env("MCNET_BENCH_SCALE", "2");
    EXPECT_EQ(bench::scaled_runs(1000), 2000u);
    EXPECT_EQ(bench::scaled_count(1000), 2000u);
  }
}

TEST(JsonReporter, WritesSchemaValidDocument) {
  char dir_template[] = "/tmp/mcnet_bench_json_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  ScopedEnv env_dir("MCNET_BENCH_JSON_DIR", dir.c_str());
  ScopedEnv env_on("MCNET_BENCH_JSON", nullptr);

  {
    bench::JsonReporter json("bench_unit_test");
    obs::Json p = obs::Json::object();
    p["x"] = obs::Json(1);
    p["y"] = obs::Json(2.5);
    json.add_point("series-a", std::move(p));
    json.meta()["topology"] = obs::Json("mesh(4,4)");
    json.registry().counter("network.injections").inc(3);
    json.registry().histogram("network.delivery_latency_s").record(1e-6);
    ASSERT_TRUE(json.write());
  }

  std::ifstream in(dir + "/bench_unit_test.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto doc = obs::Json::parse(buffer.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(obs::validate_bench_json(*doc, &error)) << error;
  EXPECT_EQ(doc->find("bench")->as_string(), "bench_unit_test");
  EXPECT_EQ(doc->find("meta")->find("topology")->as_string(), "mesh(4,4)");
  // The reporter's registry is dumped automatically, histograms included.
  EXPECT_DOUBLE_EQ(
      doc->find("metrics")->find("counters")->find("network.injections")->as_double(), 3.0);
  ASSERT_TRUE(doc->contains("histograms"));
  EXPECT_DOUBLE_EQ(
      doc->find("histograms")->find("network.delivery_latency_s")->find("count")->as_double(),
      1.0);

  std::remove((dir + "/bench_unit_test.json").c_str());
  ::rmdir(dir.c_str());
}

TEST(JsonReporter, DynamicPointEncodesInvalidCiAsNull) {
  worm::DynamicResult r;
  r.mean_latency_us = 12.5;
  r.ci_valid = false;
  r.ci_half_us = std::numeric_limits<double>::quiet_NaN();
  const obs::Json p = bench::JsonReporter::dynamic_point(300.0, r);
  EXPECT_FALSE(p.find("ci_valid")->as_bool());
  // NaN serialises as null, which is exactly what the schema requires for
  // an invalid CI.
  const auto round_trip = obs::Json::parse(p.dump());
  ASSERT_TRUE(round_trip.has_value());
  EXPECT_TRUE(round_trip->find("ci_half_us")->is_null());

  r.ci_valid = true;
  r.ci_half_us = 0.75;
  const obs::Json q = bench::JsonReporter::dynamic_point(300.0, r);
  EXPECT_TRUE(q.find("ci_valid")->as_bool());
  EXPECT_DOUBLE_EQ(q.find("ci_half_us")->as_double(), 0.75);
}

TEST(JsonReporter, DisabledOutputWritesNothing) {
  char dir_template[] = "/tmp/mcnet_bench_json_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  ScopedEnv env_dir("MCNET_BENCH_JSON_DIR", dir.c_str());
  ScopedEnv env_off("MCNET_BENCH_JSON", "off");
  EXPECT_FALSE(bench::json_output_enabled());
  {
    bench::JsonReporter json("bench_disabled");
    obs::Json p = obs::Json::object();
    p["x"] = obs::Json(1);
    p["y"] = obs::Json(1);
    json.add_point("s", std::move(p));
  }
  std::ifstream in(dir + "/bench_disabled.json");
  EXPECT_FALSE(in.good());
  ::rmdir(dir.c_str());
}

}  // namespace
